//! Assembly emitters for the communication workloads: sequential,
//! 1Th+Comp, producer/consumer (over any transport), and CompComm roles.
//!
//! Register conventions: `r1` = loop/drain index, `r2` = bound, `r3` = input
//! base, `r4` = output base, `r5`–`r9` temps, `r10`–`r19` kernel state,
//! `r20`–`r26` reserved by the software queue, `r30`/`r31` feed indices.

use crate::comm::{
    swq_prologue, swq_recv, swq_send, CommBench, Transport, COST_BASE, DELTA_BASE, HMMER_ILV,
    IDXT_BASE, LUT2_BASE, LUT_BASE, STEP_BASE, WAVE_BASE, XMB,
};
use crate::comm::{CFG_MAIN, CFG_PASS};
use crate::framework::{ADDR_IN, ADDR_OUT};
use remap_isa::{Asm, Program, Reg, Reg::*};

/// hmmer's −∞ floor as an i32 immediate.
const NEG_INFTY_I: i32 = -30000;

// --- transport helpers ----------------------------------------------------------

fn send(a: &mut Asm, t: Transport, val: Reg) {
    match t {
        Transport::SplPass => {
            a.spl_load(val, 0, 4);
            a.spl_init(CFG_PASS);
        }
        Transport::Hwq => a.hwq_send(val, 0),
        Transport::Swq => swq_send(a, val),
    }
}

fn recv(a: &mut Asm, t: Transport, dst: Reg) {
    match t {
        Transport::SplPass => a.spl_store(dst),
        Transport::Hwq => a.hwq_recv(dst, 0),
        Transport::Swq => swq_recv(a, dst),
    }
}

/// Emits `dst = max(dst, ra + rb)` using a branch (the paper's `if (sc =
/// ..) > mc` idiom). Clobbers `r9`.
fn emit_max_sum(a: &mut Asm, dst: Reg, ra: Reg, rb: Reg) {
    let skip = a.fresh_label("maxskip");
    a.add(R9, ra, rb);
    a.bge(dst, R9, skip.clone());
    a.mv(dst, R9);
    a.label(skip);
}

/// Emits `if (r < floor) r = floor`. Clobbers `r9`.
fn emit_floor(a: &mut Asm, r: Reg, floor: i32) {
    let skip = a.fresh_label("floorskip");
    a.li(R9, floor);
    a.bge(r, R9, skip.clone());
    a.mv(r, R9);
    a.label(skip);
}

/// Emits `r = clamp(r, lo, hi)` with branches. Clobbers `r9`.
fn emit_clamp(a: &mut Asm, r: Reg, lo: i32, hi: i32) {
    let l1 = a.fresh_label("cl_hi");
    let l2 = a.fresh_label("cl_lo");
    a.li(R9, hi);
    a.bge(R9, r, l1.clone());
    a.mv(r, R9);
    a.label(l1);
    a.li(R9, lo);
    a.bge(r, R9, l2.clone());
    a.mv(r, R9);
    a.label(l2);
}

/// Emits `r = |r - 512|` with a branch. Clobbers nothing else.
fn emit_abs_dev(a: &mut Asm, r: Reg) {
    let skip = a.fresh_label("absskip");
    a.addi(r, r, -512);
    a.bge(r, R0, skip.clone());
    a.sub(r, R0, r);
    a.label(skip);
}

// ===========================================================================
// dispatchers
// ===========================================================================

/// Sequential single-thread kernel.
pub(crate) fn seq(b: CommBench, n: usize) -> Program {
    match b {
        CommBench::Wc => wc_seq(n),
        CommBench::Unepic => unepic_seq(n),
        CommBench::Cjpeg => cjpeg_seq(n),
        CommBench::Adpcm => adpcm_seq(n),
        CommBench::Twolf => twolf_seq(n),
        CommBench::Hmmer => hmmer_seq(n),
        CommBench::Astar => astar_seq(n),
    }
}

/// Single thread using the SPL for computation (1Th+Comp).
pub(crate) fn comp1t(b: CommBench, n: usize) -> Program {
    match b {
        CommBench::Wc => wc_comp1t(n),
        CommBench::Unepic => unepic_comp1t(n),
        CommBench::Cjpeg => cjpeg_comp1t(n),
        CommBench::Adpcm => adpcm_comp1t(n),
        CommBench::Twolf => twolf_comp1t(n),
        CommBench::Hmmer => hmmer_comp1t(n),
        CommBench::Astar => astar_comp1t(n),
    }
}

/// Producer half of the communication-only split over transport `t`.
pub(crate) fn producer(b: CommBench, n: usize, t: Transport) -> Program {
    match b {
        CommBench::Wc => wc_producer(n, t),
        CommBench::Unepic => unepic_producer(n, t),
        CommBench::Cjpeg => cjpeg_producer(n, t),
        CommBench::Adpcm => adpcm_producer(n, t),
        CommBench::Twolf => twolf_producer(n, t),
        CommBench::Hmmer => hmmer_producer(n, t),
        CommBench::Astar => astar_producer(n, t),
    }
}

/// Consumer half of the communication-only split over transport `t`.
pub(crate) fn consumer(b: CommBench, n: usize, t: Transport) -> Program {
    match b {
        CommBench::Wc => wc_consumer(n, t),
        CommBench::Unepic => unepic_consumer(n, t),
        CommBench::Cjpeg => cjpeg_consumer(n, t),
        CommBench::Adpcm => adpcm_consumer(n, t),
        CommBench::Twolf => twolf_consumer(n, t),
        CommBench::Hmmer => hmmer_consumer(n, t),
        CommBench::Astar => astar_consumer(n, t),
    }
}

/// Producer half of the computation+communication split (SPL computes and
/// routes to the consumer).
pub(crate) fn compcomm_producer(b: CommBench, n: usize) -> Program {
    match b {
        CommBench::Wc => wc_cc_producer(n),
        CommBench::Unepic => unepic_cc_producer(n),
        CommBench::Cjpeg => cjpeg_cc_producer(n),
        CommBench::Adpcm => adpcm_cc_producer(n),
        CommBench::Twolf => twolf_cc_producer(n),
        CommBench::Hmmer => hmmer_cc_producer(n),
        CommBench::Astar => astar_cc_producer(n),
    }
}

/// Consumer half of the computation+communication split.
pub(crate) fn compcomm_consumer(b: CommBench, n: usize) -> Program {
    match b {
        CommBench::Wc => wc_cc_consumer(n),
        CommBench::Unepic => unepic_cc_consumer(n),
        CommBench::Cjpeg => cjpeg_cc_consumer(n),
        CommBench::Adpcm => adpcm_cc_consumer(n),
        CommBench::Twolf => twolf_cc_consumer(n),
        CommBench::Hmmer => hmmer_cc_consumer(n),
        CommBench::Astar => astar_cc_consumer(n),
    }
}

// ===========================================================================
// wc
// ===========================================================================
// State: r10 = chars, r11 = words, r12 = lines, r13 = in_word.

fn wc_prologue(a: &mut Asm, n: usize) {
    a.li(R1, 0);
    a.li(R2, n as i32);
    a.li(R3, ADDR_IN as i32);
    a.li(R4, ADDR_OUT as i32);
    a.li(R10, 0);
    a.li(R11, 0);
    a.li(R12, 0);
    a.li(R13, 0);
}

fn wc_epilogue(a: &mut Asm) {
    a.sw(R10, R4, 0);
    a.sw(R11, R4, 4);
    a.sw(R12, R4, 8);
    a.fence();
    a.halt();
}

/// The classic branchy classify+count step on the byte in `c`.
fn wc_classify_branchy(a: &mut Asm, c: Reg) {
    let space = a.fresh_label("wc_space");
    let newline = a.fresh_label("wc_nl");
    let next = a.fresh_label("wc_next");
    a.addi(R10, R10, 1); // chars++
    a.li(R8, 32);
    a.beq(c, R8, space.clone());
    a.li(R8, 10);
    a.beq(c, R8, newline.clone());
    // letter
    a.bne(R13, R0, next.clone());
    a.addi(R11, R11, 1); // words++
    a.li(R13, 1);
    a.j(next.clone());
    a.label(newline);
    a.addi(R12, R12, 1);
    a.li(R13, 0);
    a.j(next.clone());
    a.label(space);
    a.li(R13, 0);
    a.label(next);
}

/// Unpacks the SPL's running totals (`words | lines<<16` in `r7`) into the
/// counter registers after the drain loop; `chars` = element count.
fn wc_unpack_totals(a: &mut Asm, n: usize) {
    a.li(R10, n as i32); // chars
    a.andi(R11, R7, 0xffff); // words
    a.srli(R12, R7, 16);
    a.andi(R12, R12, 0xffff); // lines
}

/// Emits the 8-byte chunk feed for the wc SPL function: two word loads from
/// the byte stream at chunk offset `r5`, staged into the entry.
fn wc_feed_chunk(a: &mut Asm) {
    a.add(R6, R3, R5);
    a.lw(R8, R6, 0);
    a.spl_load(R8, 0, 4);
    a.lw(R8, R6, 4);
    a.spl_load(R8, 4, 4);
    a.spl_init(CFG_MAIN);
}

fn wc_seq(n: usize) -> Program {
    let mut a = Asm::new("wc-seq");
    wc_prologue(&mut a, n);
    a.label("loop");
    a.add(R6, R3, R1);
    a.lbu(R7, R6, 0);
    wc_classify_branchy(&mut a, R7);
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "loop");
    wc_epilogue(&mut a);
    a.assemble().expect("wc seq")
}

fn wc_comp1t(n: usize) -> Program {
    assert_eq!(n % 8, 0, "wc SPL modes process 8-byte chunks");
    let chunks = n / 8;
    let mut a = Asm::new("wc-comp1t");
    wc_prologue(&mut a, chunks);
    a.li(R30, 0);
    a.li(R31, 4.min(chunks) as i32);
    if chunks > 0 {
        a.label("pro");
        a.slli(R5, R30, 3);
        wc_feed_chunk(&mut a);
        a.addi(R30, R30, 1);
        a.blt(R30, R31, "pro");
        a.label("main");
        a.spl_store(R7);
        a.addi(R1, R1, 1);
        a.bge(R30, R2, "nofeed");
        a.slli(R5, R30, 3);
        wc_feed_chunk(&mut a);
        a.addi(R30, R30, 1);
        a.label("nofeed");
        a.blt(R1, R2, "main");
        wc_unpack_totals(&mut a, n);
    }
    wc_epilogue(&mut a);
    a.assemble().expect("wc comp1t")
}

fn wc_producer(n: usize, t: Transport) -> Program {
    let mut a = Asm::new("wc-producer");
    a.li(R1, 0);
    a.li(R2, n as i32);
    a.li(R3, ADDR_IN as i32);
    if t == Transport::Swq {
        swq_prologue(&mut a);
    }
    a.label("loop");
    a.add(R6, R3, R1);
    a.lbu(R7, R6, 0);
    send(&mut a, t, R7);
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "loop");
    a.halt();
    a.assemble().expect("wc producer")
}

fn wc_consumer(n: usize, t: Transport) -> Program {
    let mut a = Asm::new("wc-consumer");
    wc_prologue(&mut a, n);
    if t == Transport::Swq {
        swq_prologue(&mut a);
    }
    a.label("loop");
    recv(&mut a, t, R7);
    wc_classify_branchy(&mut a, R7);
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "loop");
    wc_epilogue(&mut a);
    a.assemble().expect("wc consumer")
}

fn wc_cc_producer(n: usize) -> Program {
    assert_eq!(n % 8, 0, "wc SPL modes process 8-byte chunks");
    let chunks = n / 8;
    let mut a = Asm::new("wc-cc-producer");
    a.li(R1, 0);
    a.li(R2, chunks as i32);
    a.li(R3, ADDR_IN as i32);
    a.label("loop");
    a.slli(R5, R1, 3);
    wc_feed_chunk(&mut a);
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "loop");
    a.halt();
    a.assemble().expect("wc cc producer")
}

fn wc_cc_consumer(n: usize) -> Program {
    let chunks = n / 8;
    let mut a = Asm::new("wc-cc-consumer");
    wc_prologue(&mut a, chunks);
    a.label("loop");
    a.spl_store(R7);
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "loop");
    wc_unpack_totals(&mut a, n);
    wc_epilogue(&mut a);
    a.assemble().expect("wc cc consumer")
}

// ===========================================================================
// unepic
// ===========================================================================
// State: r10 = acc; r15 = LUT base, r16 = LUT2 base.

fn unepic_prologue(a: &mut Asm, n: usize) {
    a.li(R1, 0);
    a.li(R2, n as i32);
    a.li(R3, ADDR_IN as i32);
    a.li(R4, ADDR_OUT as i32);
    a.li(R10, 0);
    a.li(R15, LUT_BASE as i32);
    a.li(R16, LUT2_BASE as i32);
}

/// Branchy resolve: `v` may be a negative second-level index.
fn unepic_resolve_branchy(a: &mut Asm, v: Reg) {
    let pos = a.fresh_label("un_pos");
    a.bge(v, R0, pos.clone());
    a.sub(R8, R0, v);
    a.addi(R8, R8, -1);
    a.slli(R8, R8, 2);
    a.add(R8, R16, R8);
    a.lw(v, R8, 0); // pointer-chased second-level load
    a.label(pos);
}

/// Branch-free resolve from the SPL's packed `(v, neg, off)` word in `pk`;
/// leaves the value in `r8`. Clobbers `r9`, `r14`.
fn unepic_resolve_branchfree(a: &mut Asm, pk: Reg) {
    a.slli(R8, pk, 48);
    a.srai(R8, R8, 48); // v (sign-extended 16-bit)
    a.srli(R9, pk, 16);
    a.andi(R9, R9, 1); // neg
    a.srli(R14, pk, 24); // byte offset into lut2
    a.add(R14, R16, R14);
    a.lw(R14, R14, 0); // w (harmless when neg = 0)
    a.sub(R14, R14, R8); // w - v
    a.mul(R14, R14, R9); // neg ? w - v : 0
    a.add(R8, R8, R14); // final value
}

fn unepic_seq(n: usize) -> Program {
    let mut a = Asm::new("unepic-seq");
    unepic_prologue(&mut a, n);
    a.label("loop");
    a.slli(R5, R1, 2);
    a.add(R6, R3, R5);
    a.lw(R7, R6, 0); // token
    a.slli(R7, R7, 2);
    a.add(R7, R15, R7);
    a.lw(R7, R7, 0); // v = lut[token]
    unepic_resolve_branchy(&mut a, R7);
    a.add(R10, R10, R7);
    a.add(R6, R4, R5);
    a.sw(R10, R6, 0);
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "loop");
    a.halt();
    a.assemble().expect("unepic seq")
}

fn unepic_comp1t(n: usize) -> Program {
    let mut a = Asm::new("unepic-comp1t");
    unepic_prologue(&mut a, n);
    // Pipelined: feed token classification into the SPL, drain branch-free.
    a.li(R30, 0);
    let k = 4.min(n) as i32;
    a.li(R31, k);
    if n > 0 {
        a.label("pro");
        a.slli(R5, R30, 2);
        unepic_feed(&mut a);
        a.addi(R30, R30, 1);
        a.blt(R30, R31, "pro");
        a.label("main");
        a.slli(R5, R1, 2);
        a.spl_store(R7);
        unepic_resolve_branchfree(&mut a, R7);
        a.add(R10, R10, R8);
        a.add(R6, R4, R5);
        a.sw(R10, R6, 0);
        a.addi(R1, R1, 1);
        a.bge(R30, R2, "nofeed");
        a.slli(R5, R30, 2);
        unepic_feed(&mut a);
        a.addi(R30, R30, 1);
        a.label("nofeed");
        a.blt(R1, R2, "main");
    }
    a.halt();
    a.assemble().expect("unepic comp1t")
}

fn unepic_feed(a: &mut Asm) {
    a.add(R6, R3, R5);
    a.lw(R7, R6, 0);
    a.slli(R7, R7, 2);
    a.add(R7, R15, R7);
    a.lw(R7, R7, 0);
    a.spl_load(R7, 0, 4);
    a.spl_init(CFG_MAIN);
}

fn unepic_producer(n: usize, t: Transport) -> Program {
    let mut a = Asm::new("unepic-producer");
    a.li(R1, 0);
    a.li(R2, n as i32);
    a.li(R3, ADDR_IN as i32);
    a.li(R15, LUT_BASE as i32);
    if t == Transport::Swq {
        swq_prologue(&mut a);
    }
    a.label("loop");
    a.slli(R5, R1, 2);
    a.add(R6, R3, R5);
    a.lw(R7, R6, 0);
    a.slli(R7, R7, 2);
    a.add(R7, R15, R7);
    a.lw(R7, R7, 0);
    send(&mut a, t, R7);
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "loop");
    a.halt();
    a.assemble().expect("unepic producer")
}

fn unepic_consumer(n: usize, t: Transport) -> Program {
    let mut a = Asm::new("unepic-consumer");
    unepic_prologue(&mut a, n);
    if t == Transport::Swq {
        swq_prologue(&mut a);
    }
    a.label("loop");
    a.slli(R5, R1, 2);
    recv(&mut a, t, R7);
    // Received as u32: sign-extend.
    a.slli(R7, R7, 32);
    a.srai(R7, R7, 32);
    unepic_resolve_branchy(&mut a, R7);
    a.add(R10, R10, R7);
    a.add(R6, R4, R5);
    a.sw(R10, R6, 0);
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "loop");
    a.halt();
    a.assemble().expect("unepic consumer")
}

fn unepic_cc_producer(n: usize) -> Program {
    let mut a = Asm::new("unepic-cc-producer");
    a.li(R1, 0);
    a.li(R2, n as i32);
    a.li(R3, ADDR_IN as i32);
    a.li(R15, LUT_BASE as i32);
    a.label("loop");
    a.slli(R5, R1, 2);
    unepic_feed(&mut a);
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "loop");
    a.halt();
    a.assemble().expect("unepic cc producer")
}

fn unepic_cc_consumer(n: usize) -> Program {
    let mut a = Asm::new("unepic-cc-consumer");
    unepic_prologue(&mut a, n);
    a.label("loop");
    a.slli(R5, R1, 2);
    a.spl_store(R7);
    unepic_resolve_branchfree(&mut a, R7);
    a.add(R10, R10, R8);
    a.add(R6, R4, R5);
    a.sw(R10, R6, 0);
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "loop");
    a.halt();
    a.assemble().expect("unepic cc consumer")
}

// ===========================================================================
// cjpeg
// ===========================================================================
// State: r10 = block sum, r17 = block-sum output cursor.

fn cjpeg_prologue(a: &mut Asm, n: usize) {
    a.li(R1, 0);
    a.li(R2, n as i32);
    a.li(R3, ADDR_IN as i32);
    a.li(R4, ADDR_OUT as i32);
    a.li(R10, 0);
    a.li(R17, (ADDR_OUT + 4 * n as i64) as i32);
}

/// Software RGB→YCC on the packed pixel in `px`; result packed in `r14`.
/// Clobbers `r7`, `r8`, `r9`, `r14`, `r15`, `r16`.
fn cjpeg_ycc_sw(a: &mut Asm, px: Reg) {
    a.andi(R7, px, 0xff); // r
    a.srli(R8, px, 8);
    a.andi(R8, R8, 0xff); // g
    a.srli(R9, px, 16);
    a.andi(R9, R9, 0xff); // b
                          // y
    a.muli(R14, R7, 77);
    a.muli(R15, R8, 150);
    a.add(R14, R14, R15);
    a.muli(R15, R9, 29);
    a.add(R14, R14, R15);
    a.srai(R14, R14, 8);
    // cb
    a.muli(R15, R7, -43);
    a.muli(R16, R8, -85);
    a.add(R15, R15, R16);
    a.muli(R16, R9, 128);
    a.add(R15, R15, R16);
    a.srai(R15, R15, 8);
    a.addi(R15, R15, 128);
    // cr
    a.muli(R16, R7, 128);
    a.muli(R7, R8, -107);
    a.add(R16, R16, R7);
    a.muli(R7, R9, -21);
    a.add(R16, R16, R7);
    a.srai(R16, R16, 8);
    a.addi(R16, R16, 128);
    // pack
    a.slli(R15, R15, 8);
    a.slli(R16, R16, 16);
    a.or(R14, R14, R15);
    a.or(R14, R14, R16);
}

/// Store packed YCC + maintain the 8-pixel block checksum. Uses the packed
/// value in `pk`, loop index `r1`. Clobbers `r8`, `r9`.
fn cjpeg_consume(a: &mut Asm, pk: Reg) {
    let noblk = a.fresh_label("cj_noblk");
    a.slli(R8, R1, 2);
    a.add(R8, R4, R8);
    a.sw(pk, R8, 0);
    a.andi(R9, pk, 0xff); // y
    a.add(R10, R10, R9);
    a.andi(R9, R1, 7);
    a.li(R8, 7);
    a.bne(R9, R8, noblk.clone());
    a.sw(R10, R17, 0);
    a.addi(R17, R17, 4);
    a.li(R10, 0);
    a.label(noblk);
}

fn cjpeg_seq(n: usize) -> Program {
    let mut a = Asm::new("cjpeg-seq");
    cjpeg_prologue(&mut a, n);
    a.label("loop");
    a.slli(R5, R1, 2);
    a.add(R6, R3, R5);
    a.lw(R6, R6, 0);
    cjpeg_ycc_sw(&mut a, R6);
    cjpeg_consume(&mut a, R14);
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "loop");
    a.halt();
    a.assemble().expect("cjpeg seq")
}

fn cjpeg_comp1t(n: usize) -> Program {
    let mut a = Asm::new("cjpeg-comp1t");
    cjpeg_prologue(&mut a, n);
    a.li(R30, 0);
    a.li(R31, 4.min(n) as i32);
    if n > 0 {
        a.label("pro");
        a.slli(R5, R30, 2);
        a.add(R6, R3, R5);
        a.lw(R6, R6, 0);
        a.spl_load(R6, 0, 4);
        a.spl_init(CFG_MAIN);
        a.addi(R30, R30, 1);
        a.blt(R30, R31, "pro");
        a.label("main");
        a.spl_store(R14);
        cjpeg_consume(&mut a, R14);
        a.addi(R1, R1, 1);
        a.bge(R30, R2, "nofeed");
        a.slli(R5, R30, 2);
        a.add(R6, R3, R5);
        a.lw(R6, R6, 0);
        a.spl_load(R6, 0, 4);
        a.spl_init(CFG_MAIN);
        a.addi(R30, R30, 1);
        a.label("nofeed");
        a.blt(R1, R2, "main");
    }
    a.halt();
    a.assemble().expect("cjpeg comp1t")
}

fn cjpeg_producer(n: usize, t: Transport) -> Program {
    let mut a = Asm::new("cjpeg-producer");
    a.li(R1, 0);
    a.li(R2, n as i32);
    a.li(R3, ADDR_IN as i32);
    if t == Transport::Swq {
        swq_prologue(&mut a);
    }
    a.label("loop");
    a.slli(R5, R1, 2);
    a.add(R6, R3, R5);
    a.lw(R6, R6, 0);
    cjpeg_ycc_sw(&mut a, R6);
    send(&mut a, t, R14);
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "loop");
    a.halt();
    a.assemble().expect("cjpeg producer")
}

fn cjpeg_consumer(n: usize, t: Transport) -> Program {
    let mut a = Asm::new("cjpeg-consumer");
    cjpeg_prologue(&mut a, n);
    if t == Transport::Swq {
        swq_prologue(&mut a);
    }
    a.label("loop");
    recv(&mut a, t, R14);
    cjpeg_consume(&mut a, R14);
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "loop");
    a.halt();
    a.assemble().expect("cjpeg consumer")
}

fn cjpeg_cc_producer(n: usize) -> Program {
    let mut a = Asm::new("cjpeg-cc-producer");
    a.li(R1, 0);
    a.li(R2, n as i32);
    a.li(R3, ADDR_IN as i32);
    a.label("loop");
    a.slli(R5, R1, 2);
    a.add(R6, R3, R5);
    a.lw(R6, R6, 0);
    a.spl_load(R6, 0, 4);
    a.spl_init(CFG_MAIN);
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "loop");
    a.halt();
    a.assemble().expect("cjpeg cc producer")
}

fn cjpeg_cc_consumer(n: usize) -> Program {
    let mut a = Asm::new("cjpeg-cc-consumer");
    cjpeg_prologue(&mut a, n);
    a.label("loop");
    a.spl_store(R14);
    cjpeg_consume(&mut a, R14);
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "loop");
    a.halt();
    a.assemble().expect("cjpeg cc consumer")
}

// ===========================================================================
// adpcm
// ===========================================================================
// State: r10 = valpred, r11 = index; r15 = step table, r16 = index table.

fn adpcm_prologue(a: &mut Asm, n: usize) {
    a.li(R1, 0);
    a.li(R2, n as i32);
    a.li(R3, ADDR_IN as i32);
    a.li(R4, ADDR_OUT as i32);
    a.li(R10, 0);
    a.li(R11, 0);
    a.li(R15, STEP_BASE as i32);
    a.li(R16, IDXT_BASE as i32);
}

/// Software vpdiff of code `c` (r7) with step in `r14`; signed result in
/// `r17`. Branchy (four data-dependent conditions). Clobbers `r8`, `r9`.
fn adpcm_vpdiff_sw(a: &mut Asm) {
    let s1 = a.fresh_label("ad_s1");
    let s2 = a.fresh_label("ad_s2");
    let s3 = a.fresh_label("ad_s3");
    let s4 = a.fresh_label("ad_s4");
    a.srai(R17, R14, 3);
    a.andi(R8, R7, 4);
    a.beq(R8, R0, s1.clone());
    a.add(R17, R17, R14);
    a.label(s1);
    a.andi(R8, R7, 2);
    a.beq(R8, R0, s2.clone());
    a.srai(R9, R14, 1);
    a.add(R17, R17, R9);
    a.label(s2);
    a.andi(R8, R7, 1);
    a.beq(R8, R0, s3.clone());
    a.srai(R9, R14, 2);
    a.add(R17, R17, R9);
    a.label(s3);
    a.andi(R8, R7, 8);
    a.beq(R8, R0, s4.clone());
    a.sub(R17, R0, R17);
    a.label(s4);
}

/// Loads the code into `r7` and the current step into `r14`.
fn adpcm_load_code_step(a: &mut Asm) {
    a.slli(R5, R1, 2);
    a.add(R6, R3, R5);
    a.lw(R7, R6, 0); // code
    a.slli(R8, R11, 2);
    a.add(R8, R15, R8);
    a.lw(R14, R8, 0); // step = stepTable[index]
}

/// Index adaptation: `index = clamp(index + idxTable[c], 0, 88)`.
fn adpcm_index_update(a: &mut Asm) {
    a.slli(R8, R7, 2);
    a.add(R8, R16, R8);
    a.lw(R8, R8, 0);
    a.add(R11, R11, R8);
    emit_clamp(a, R11, 0, 88);
}

/// valpred update from the signed vpdiff in `r17` + output store.
fn adpcm_valpred_store(a: &mut Asm) {
    a.add(R10, R10, R17);
    emit_clamp(a, R10, -32768, 32767);
    a.slli(R5, R1, 2);
    a.add(R6, R4, R5);
    a.sw(R10, R6, 0);
}

fn adpcm_seq(n: usize) -> Program {
    let mut a = Asm::new("adpcm-seq");
    adpcm_prologue(&mut a, n);
    a.label("loop");
    adpcm_load_code_step(&mut a);
    adpcm_vpdiff_sw(&mut a);
    adpcm_index_update(&mut a);
    adpcm_valpred_store(&mut a);
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "loop");
    a.halt();
    a.assemble().expect("adpcm seq")
}

fn adpcm_comp1t(n: usize) -> Program {
    // The index recurrence serializes iterations: no software pipelining.
    let mut a = Asm::new("adpcm-comp1t");
    adpcm_prologue(&mut a, n);
    a.label("loop");
    adpcm_load_code_step(&mut a);
    a.spl_load(R7, 0, 1);
    a.spl_load(R14, 4, 4);
    a.spl_init(CFG_MAIN);
    adpcm_index_update(&mut a);
    a.spl_store(R17);
    a.slli(R17, R17, 32);
    a.srai(R17, R17, 32); // sign-extend vpdiff
    adpcm_valpred_store(&mut a);
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "loop");
    a.halt();
    a.assemble().expect("adpcm comp1t")
}

fn adpcm_producer(n: usize, t: Transport) -> Program {
    let mut a = Asm::new("adpcm-producer");
    adpcm_prologue(&mut a, n);
    if t == Transport::Swq {
        swq_prologue(&mut a);
    }
    a.label("loop");
    adpcm_load_code_step(&mut a);
    adpcm_vpdiff_sw(&mut a);
    adpcm_index_update(&mut a);
    send(&mut a, t, R17);
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "loop");
    a.halt();
    a.assemble().expect("adpcm producer")
}

fn adpcm_consumer(n: usize, t: Transport) -> Program {
    let mut a = Asm::new("adpcm-consumer");
    adpcm_prologue(&mut a, n);
    if t == Transport::Swq {
        swq_prologue(&mut a);
    }
    a.label("loop");
    recv(&mut a, t, R17);
    a.slli(R17, R17, 32);
    a.srai(R17, R17, 32);
    adpcm_valpred_store(&mut a);
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "loop");
    a.halt();
    a.assemble().expect("adpcm consumer")
}

fn adpcm_cc_producer(n: usize) -> Program {
    let mut a = Asm::new("adpcm-cc-producer");
    adpcm_prologue(&mut a, n);
    a.label("loop");
    adpcm_load_code_step(&mut a);
    a.spl_load(R7, 0, 1);
    a.spl_load(R14, 4, 4);
    a.spl_init(CFG_MAIN);
    adpcm_index_update(&mut a);
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "loop");
    a.halt();
    a.assemble().expect("adpcm cc producer")
}

fn adpcm_cc_consumer(n: usize) -> Program {
    let mut a = Asm::new("adpcm-cc-consumer");
    adpcm_prologue(&mut a, n);
    a.label("loop");
    a.spl_store(R17);
    a.slli(R17, R17, 32);
    a.srai(R17, R17, 32);
    adpcm_valpred_store(&mut a);
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "loop");
    a.halt();
    a.assemble().expect("adpcm cc consumer")
}

// ===========================================================================
// twolf
// ===========================================================================
// State: r10 = net cost, r11 = minx, r12 = maxx, r17 = output cursor.

fn twolf_prologue(a: &mut Asm, n: usize) {
    a.li(R1, 0);
    a.li(R2, n as i32);
    a.li(R3, ADDR_IN as i32);
    a.li(R17, ADDR_OUT as i32);
    a.li(R10, 0);
    a.li(R11, 1 << 20);
    a.li(R12, -(1 << 20));
}

/// Per-term accumulate: cost in `r7`, x in `r8`; every 8th term stores the
/// net summary. Clobbers `r9`, `r14`.
fn twolf_consume(a: &mut Asm) {
    let nmin = a.fresh_label("tw_nmin");
    let nmax = a.fresh_label("tw_nmax");
    let nonet = a.fresh_label("tw_nonet");
    a.add(R10, R10, R7);
    a.bge(R8, R11, nmin.clone());
    a.mv(R11, R8);
    a.label(nmin);
    a.bge(R12, R8, nmax.clone());
    a.mv(R12, R8);
    a.label(nmax);
    a.andi(R9, R1, 7);
    a.li(R14, 7);
    a.bne(R9, R14, nonet.clone());
    a.sw(R10, R17, 0);
    a.sub(R9, R12, R11);
    a.sw(R9, R17, 4);
    a.addi(R17, R17, 8);
    a.li(R10, 0);
    a.li(R11, 1 << 20);
    a.li(R12, -(1 << 20));
    a.label(nonet);
}

/// Loads x into `r8` and y into `r14` for term `r1`.
fn twolf_load_xy(a: &mut Asm) {
    a.slli(R5, R1, 3);
    a.add(R6, R3, R5);
    a.lw(R8, R6, 0);
    a.lw(R14, R6, 4);
}

fn twolf_seq(n: usize) -> Program {
    let mut a = Asm::new("twolf-seq");
    twolf_prologue(&mut a, n);
    a.label("loop");
    twolf_load_xy(&mut a);
    a.mv(R7, R8);
    emit_abs_dev(&mut a, R7); // |x-512|
    emit_abs_dev(&mut a, R14); // |y-512|
    a.add(R7, R7, R14);
    twolf_consume(&mut a);
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "loop");
    a.halt();
    a.assemble().expect("twolf seq")
}

fn twolf_feed(a: &mut Asm) {
    a.slli(R5, R30, 3);
    a.add(R6, R3, R5);
    a.lw(R8, R6, 0);
    a.lw(R14, R6, 4);
    a.spl_load(R8, 0, 4);
    a.spl_load(R14, 4, 4);
    a.spl_init(CFG_MAIN);
}

/// Unpacks the SPL result (cost | x<<16) into `r7`/`r8`.
fn twolf_unpack(a: &mut Asm, pk: Reg) {
    a.andi(R7, pk, 0xffff);
    a.srli(R8, pk, 16);
    a.andi(R8, R8, 0xffff);
}

fn twolf_comp1t(n: usize) -> Program {
    let mut a = Asm::new("twolf-comp1t");
    twolf_prologue(&mut a, n);
    a.li(R30, 0);
    a.li(R31, 4.min(n) as i32);
    if n > 0 {
        a.label("pro");
        twolf_feed(&mut a);
        a.addi(R30, R30, 1);
        a.blt(R30, R31, "pro");
        a.label("main");
        a.spl_store(R15);
        twolf_unpack(&mut a, R15);
        twolf_consume(&mut a);
        a.addi(R1, R1, 1);
        a.bge(R30, R2, "nofeed");
        twolf_feed(&mut a);
        a.addi(R30, R30, 1);
        a.label("nofeed");
        a.blt(R1, R2, "main");
    }
    a.halt();
    a.assemble().expect("twolf comp1t")
}

fn twolf_producer(n: usize, t: Transport) -> Program {
    let mut a = Asm::new("twolf-producer");
    a.li(R1, 0);
    a.li(R2, n as i32);
    a.li(R3, ADDR_IN as i32);
    if t == Transport::Swq {
        swq_prologue(&mut a);
    }
    a.label("loop");
    twolf_load_xy(&mut a);
    a.mv(R7, R8);
    emit_abs_dev(&mut a, R7);
    emit_abs_dev(&mut a, R14);
    a.add(R7, R7, R14);
    // pack cost | x<<16
    a.slli(R9, R8, 16);
    a.or(R7, R7, R9);
    send(&mut a, t, R7);
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "loop");
    a.halt();
    a.assemble().expect("twolf producer")
}

fn twolf_consumer(n: usize, t: Transport) -> Program {
    let mut a = Asm::new("twolf-consumer");
    twolf_prologue(&mut a, n);
    if t == Transport::Swq {
        swq_prologue(&mut a);
    }
    a.label("loop");
    recv(&mut a, t, R15);
    twolf_unpack(&mut a, R15);
    twolf_consume(&mut a);
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "loop");
    a.halt();
    a.assemble().expect("twolf consumer")
}

fn twolf_cc_producer(n: usize) -> Program {
    let mut a = Asm::new("twolf-cc-producer");
    a.li(R1, 0);
    a.li(R2, n as i32);
    a.li(R3, ADDR_IN as i32);
    a.li(R30, 0);
    a.label("loop");
    a.mv(R30, R1); // twolf_feed indexes with r30
    twolf_feed(&mut a);
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "loop");
    a.halt();
    a.assemble().expect("twolf cc producer")
}

fn twolf_cc_consumer(n: usize) -> Program {
    let mut a = Asm::new("twolf-cc-consumer");
    twolf_prologue(&mut a, n);
    a.label("loop");
    a.spl_store(R15);
    twolf_unpack(&mut a, R15);
    twolf_consume(&mut a);
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "loop");
    a.halt();
    a.assemble().expect("twolf cc consumer")
}

// ===========================================================================
// hmmer (Figure 5)
// ===========================================================================
// Arrays (each M+1 words at IN + j*(M+1)*4):
//   0 mpp, 1 ip, 2 dpp, 3 tpmm, 4 tpim, 5 tpdm, 6 bp, 7 ms,
//   8 tpdd, 9 tpmd, 10 tpmi, 11 tpii, 12 is
// Outputs: mc at OUT, dc at OUT + (M+1)*4, ic at OUT + 2*(M+1)*4.
// State: r10 = mc[k-1], r11 = dc[k-1], r17 = M.

fn hm_off(j: i64, len: usize) -> i32 {
    (j * (len as i64) * 4) as i32
}

fn hmmer_prologue(a: &mut Asm, m: usize) {
    a.li(R1, 1); // k
    a.li(R2, m as i32 + 1); // bound
    a.li(R3, ADDR_IN as i32);
    a.li(R4, ADDR_OUT as i32);
    a.li(R10, 0); // mc[0]
    a.li(R11, 0); // dc[0]
    a.li(R17, m as i32);
}

/// Loads the eight mc inputs for row `k` whose `k*4` is in `r5`
/// (`r6 = r5 - 4` is computed here), leaving xb in `r16` and ms in `r15`,
/// and the six [k-1] operands in `r7,r8,r9,r14,r18,r19`.
fn hmmer_load_mc_inputs(a: &mut Asm, len: usize) {
    a.addi(R6, R5, -4);
    a.add(R6, R3, R6); // base + (k-1)*4
    a.lw(R7, R6, hm_off(0, len)); // mpp[k-1]
    a.lw(R8, R6, hm_off(3, len)); // tpmm[k-1]
    a.lw(R9, R6, hm_off(1, len)); // ip[k-1]
    a.lw(R14, R6, hm_off(4, len)); // tpim[k-1]
    a.lw(R18, R6, hm_off(2, len)); // dpp[k-1]
    a.lw(R19, R6, hm_off(5, len)); // tpdm[k-1]
    a.add(R6, R3, R5); // base + k*4
    a.lw(R16, R6, hm_off(6, len)); // bp[k]
    a.addi(R16, R16, XMB as i32); // xb = xmb + bp[k]
    a.lw(R15, R6, hm_off(7, len)); // ms[k]
}

/// Computes mc in `r7` from the loaded inputs (software version).
fn hmmer_mc_sw(a: &mut Asm) {
    a.add(R7, R7, R8); // mc = mpp + tpmm
    emit_max_sum(a, R7, R9, R14); // vs ip + tpim
    emit_max_sum(a, R7, R18, R19); // vs dpp + tpdm
    let skip = a.fresh_label("hm_xb");
    a.bge(R7, R16, skip.clone());
    a.mv(R7, R16);
    a.label(skip);
    a.add(R7, R7, R15); // += ms
    emit_floor(a, R7, NEG_INFTY_I);
}

/// dc computation for row `k` (`r5 = k*4`): needs mc[k-1] in `r10`,
/// dc[k-1] in `r11`; leaves dc in `r11` and stores it. Clobbers
/// `r6`, `r8`, `r9`.
fn hmmer_dc(a: &mut Asm, len: usize) {
    a.addi(R6, R5, -4);
    a.add(R6, R3, R6);
    a.lw(R8, R6, hm_off(8, len)); // tpdd[k-1]
    a.add(R11, R11, R8); // dc = dc[k-1] + tpdd
    a.lw(R8, R6, hm_off(9, len)); // tpmd[k-1]
    emit_max_sum(a, R11, R10, R8); // vs mc[k-1] + tpmd
    emit_floor(a, R11, NEG_INFTY_I);
    a.add(R6, R4, R5);
    a.sw(R11, R6, hm_off(1, len)); // dc[k]
}

/// ic computation for row `k` when `k < M`. Clobbers `r6`, `r8`, `r9`,
/// `r14`, `r15`.
fn hmmer_ic(a: &mut Asm, len: usize) {
    let skip = a.fresh_label("hm_noic");
    a.bge(R1, R17, skip.clone()); // only when k < M
    a.add(R6, R3, R5);
    a.lw(R14, R6, hm_off(0, len)); // mpp[k]
    a.lw(R8, R6, hm_off(10, len)); // tpmi[k]
    a.add(R14, R14, R8);
    a.lw(R15, R6, hm_off(1, len)); // ip[k]
    a.lw(R8, R6, hm_off(11, len)); // tpii[k]
    emit_max_sum(a, R14, R15, R8);
    a.lw(R8, R6, hm_off(12, len)); // is[k]
    a.add(R14, R14, R8);
    emit_floor(a, R14, NEG_INFTY_I);
    a.add(R6, R4, R5);
    a.sw(R14, R6, hm_off(2, len)); // ic[k]
    a.label(skip);
}

fn hmmer_seq(m: usize) -> Program {
    let len = m + 1;
    let mut a = Asm::new("hmmer-seq");
    hmmer_prologue(&mut a, m);
    a.label("loop");
    a.slli(R5, R1, 2);
    hmmer_load_mc_inputs(&mut a, len);
    hmmer_mc_sw(&mut a);
    // store mc[k]; dc uses mc[k-1] (r10) before we overwrite it.
    a.add(R6, R4, R5);
    a.sw(R7, R6, 0);
    hmmer_dc(&mut a, len);
    a.mv(R10, R7); // mc[k-1] ← mc[k]
    hmmer_ic(&mut a, len);
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "loop");
    a.halt();
    a.assemble().expect("hmmer seq")
}

/// Feeds the 8 packed 16-bit mc operands of row `r30` into the SPL from
/// the interleaved operand stream (`r16` = stream base): four word loads
/// fill one row-width entry. xmb is added inside the fabric.
fn hmmer_feed(a: &mut Asm, _len: usize) {
    a.slli(R5, R30, 4); // (k) * 16; stream record for k starts at (k-1)*16
    a.add(R6, R16, R5);
    a.lw(R7, R6, -16);
    a.spl_load(R7, 0, 4);
    a.lw(R7, R6, -12);
    a.spl_load(R7, 4, 4);
    a.lw(R7, R6, -8);
    a.spl_load(R7, 8, 4);
    a.lw(R7, R6, -4);
    a.spl_load(R7, 12, 4);
    a.spl_init(CFG_MAIN);
}

/// Drains one mc result into `r7` (sign-extended 16-bit).
fn hmmer_drain_mc(a: &mut Asm) {
    a.spl_store(R7);
    a.slli(R7, R7, 48);
    a.srai(R7, R7, 48);
}

fn hmmer_comp1t(m: usize) -> Program {
    let len = m + 1;
    let mut a = Asm::new("hmmer-comp1t");
    hmmer_prologue(&mut a, m);
    a.li(R16, HMMER_ILV as i32);
    a.li(R30, 1); // feed k
    a.li(R31, (1 + 4.min(m)) as i32);
    if m > 0 {
        a.label("pro");
        hmmer_feed(&mut a, len);
        a.addi(R30, R30, 1);
        a.blt(R30, R31, "pro");
        a.label("main");
        a.slli(R5, R1, 2);
        hmmer_drain_mc(&mut a);
        a.add(R6, R4, R5);
        a.sw(R7, R6, 0);
        hmmer_dc(&mut a, len);
        a.mv(R10, R7);
        hmmer_ic(&mut a, len);
        a.addi(R1, R1, 1);
        a.bge(R30, R2, "nofeed");
        hmmer_feed(&mut a, len);
        a.addi(R30, R30, 1);
        a.label("nofeed");
        a.blt(R1, R2, "main");
    }
    a.halt();
    a.assemble().expect("hmmer comp1t")
}

fn hmmer_producer(m: usize, t: Transport) -> Program {
    // Figure 5(c): producer computes mc and ic in software, sends mc.
    let len = m + 1;
    let mut a = Asm::new("hmmer-producer");
    hmmer_prologue(&mut a, m);
    if t == Transport::Swq {
        swq_prologue(&mut a);
    }
    a.label("loop");
    a.slli(R5, R1, 2);
    hmmer_load_mc_inputs(&mut a, len);
    hmmer_mc_sw(&mut a);
    send(&mut a, t, R7);
    hmmer_ic(&mut a, len);
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "loop");
    a.halt();
    a.assemble().expect("hmmer producer")
}

fn hmmer_consumer(m: usize, t: Transport) -> Program {
    // Figure 5(c): consumer receives mc, stores it, computes dc.
    let len = m + 1;
    let mut a = Asm::new("hmmer-consumer");
    hmmer_prologue(&mut a, m);
    if t == Transport::Swq {
        swq_prologue(&mut a);
    }
    a.label("loop");
    a.slli(R5, R1, 2);
    recv(&mut a, t, R7);
    a.slli(R7, R7, 48);
    a.srai(R7, R7, 48); // mc as signed 16-bit
    a.add(R6, R4, R5);
    a.sw(R7, R6, 0);
    hmmer_dc(&mut a, len);
    a.mv(R10, R7);
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "loop");
    a.halt();
    a.assemble().expect("hmmer consumer")
}

fn hmmer_cc_producer(m: usize) -> Program {
    // Figure 5(d): producer loads mc inputs into the SPL and computes ic.
    let len = m + 1;
    let mut a = Asm::new("hmmer-cc-producer");
    hmmer_prologue(&mut a, m);
    a.li(R16, HMMER_ILV as i32);
    a.li(R30, 1);
    a.label("loop");
    hmmer_feed(&mut a, len);
    a.mv(R1, R30); // ic indexes with r1/r5
    a.slli(R5, R1, 2);
    hmmer_ic(&mut a, len);
    a.addi(R30, R30, 1);
    a.bne(R30, R2, "loop");
    a.halt();
    a.assemble().expect("hmmer cc producer")
}

fn hmmer_cc_consumer(m: usize) -> Program {
    // Figure 5(d): consumer receives mc from the fabric, computes dc.
    let len = m + 1;
    let mut a = Asm::new("hmmer-cc-consumer");
    hmmer_prologue(&mut a, m);
    a.label("loop");
    a.slli(R5, R1, 2);
    hmmer_drain_mc(&mut a);
    a.add(R6, R4, R5);
    a.sw(R7, R6, 0);
    hmmer_dc(&mut a, len);
    a.mv(R10, R7);
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "loop");
    a.halt();
    a.assemble().expect("hmmer cc consumer")
}

// ===========================================================================
// astar (makebound2)
// ===========================================================================
// Unit u = (cell index i = u >> 2, direction d = u & 3); 4n units total.
// State: r10 = update count, r15 = wave base, r16 = cost base, r17 = delta
// base, r18 = dist base (OUT + 4), r19 = cells base.

fn astar_prologue(a: &mut Asm, n: usize) {
    a.li(R1, 0);
    a.li(R2, (4 * n) as i32);
    a.li(R3, ADDR_IN as i32);
    a.li(R4, ADDR_OUT as i32);
    a.li(R10, 0);
    a.li(R15, WAVE_BASE as i32);
    a.li(R16, COST_BASE as i32);
    a.li(R17, DELTA_BASE as i32);
    a.li(R18, (ADDR_OUT + 4) as i32);
    a.li(R19, ADDR_IN as i32);
}

fn astar_epilogue(a: &mut Asm) {
    a.sw(R10, R4, 0);
    a.fence();
    a.halt();
}

/// Computes nbr (r8) and newdist (r9) for unit index in `idx` (software
/// version). Clobbers `r5`–`r9`, `r14`.
fn astar_unit_sw(a: &mut Asm, idx: Reg) {
    a.andi(R5, idx, -4); // (u >> 2) * 4 — byte offset of cell/wave
    a.add(R6, R19, R5);
    a.lw(R8, R6, 0); // cell
    a.add(R6, R15, R5);
    a.lw(R9, R6, 0); // wave
    a.andi(R14, idx, 3);
    a.slli(R14, R14, 2);
    a.add(R14, R17, R14);
    a.lw(R14, R14, 0); // delta[d]
    a.add(R8, R8, R14); // nbr
    a.slli(R5, idx, 2);
    a.add(R6, R16, R5);
    a.lw(R14, R6, 0); // cost[u]
    a.add(R9, R9, R14); // newdist
}

/// The consumer-side compare-and-update with the unpredictable branch:
/// nbr in `r8`, newdist in `r9`. Clobbers `r5`, `r6`, `r14`.
fn astar_update(a: &mut Asm) {
    let skip = a.fresh_label("as_skip");
    a.slli(R5, R8, 2);
    a.add(R6, R18, R5);
    a.lw(R14, R6, 0); // dist[nbr]
    a.bge(R9, R14, skip.clone());
    a.sw(R9, R6, 0);
    a.addi(R10, R10, 1);
    a.label(skip);
}

fn astar_seq(n: usize) -> Program {
    let mut a = Asm::new("astar-seq");
    astar_prologue(&mut a, n);
    a.label("loop");
    astar_unit_sw(&mut a, R1);
    astar_update(&mut a);
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "loop");
    astar_epilogue(&mut a);
    a.assemble().expect("astar seq")
}

/// Feeds unit `r30` into the SPL: cell(4B), dir(1B), wave|cost packed (4B).
fn astar_feed(a: &mut Asm) {
    a.andi(R5, R30, -4);
    a.add(R6, R19, R5);
    a.lw(R8, R6, 0); // cell
    a.add(R6, R15, R5);
    a.lw(R9, R6, 0); // wave
    a.slli(R5, R30, 2);
    a.add(R6, R16, R5);
    a.lw(R14, R6, 0); // cost[u]
    a.slli(R14, R14, 16);
    a.or(R9, R9, R14); // wave | cost<<16
    a.andi(R14, R30, 3);
    a.spl_load(R8, 0, 4);
    a.spl_load(R14, 4, 1);
    a.spl_load(R9, 8, 4);
    a.spl_init(CFG_MAIN);
}

/// Drains one packed (nbr | newdist<<16) result into `r8`/`r9`.
fn astar_drain(a: &mut Asm) {
    a.spl_store(R8);
    a.srli(R9, R8, 16);
    a.andi(R9, R9, 0xffff);
    a.andi(R8, R8, 0xffff);
}

fn astar_comp1t(n: usize) -> Program {
    let units = 4 * n;
    let mut a = Asm::new("astar-comp1t");
    astar_prologue(&mut a, n);
    a.li(R30, 0);
    a.li(R31, 4.min(units) as i32);
    if units > 0 {
        a.label("pro");
        astar_feed(&mut a);
        a.addi(R30, R30, 1);
        a.blt(R30, R31, "pro");
        a.label("main");
        astar_drain(&mut a);
        astar_update(&mut a);
        a.addi(R1, R1, 1);
        a.bge(R30, R2, "nofeed");
        astar_feed(&mut a);
        a.addi(R30, R30, 1);
        a.label("nofeed");
        a.blt(R1, R2, "main");
    }
    astar_epilogue(&mut a);
    a.assemble().expect("astar comp1t")
}

fn astar_producer(n: usize, t: Transport) -> Program {
    let mut a = Asm::new("astar-producer");
    astar_prologue(&mut a, n);
    if t == Transport::Swq {
        swq_prologue(&mut a);
    }
    a.label("loop");
    astar_unit_sw(&mut a, R1);
    // pack nbr | newdist<<16
    a.slli(R9, R9, 16);
    a.or(R8, R8, R9);
    send(&mut a, t, R8);
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "loop");
    a.halt();
    a.assemble().expect("astar producer")
}

fn astar_consumer(n: usize, t: Transport) -> Program {
    let mut a = Asm::new("astar-consumer");
    astar_prologue(&mut a, n);
    if t == Transport::Swq {
        swq_prologue(&mut a);
    }
    a.label("loop");
    recv(&mut a, t, R8);
    a.srli(R9, R8, 16);
    a.andi(R9, R9, 0xffff);
    a.andi(R8, R8, 0xffff);
    astar_update(&mut a);
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "loop");
    astar_epilogue(&mut a);
    a.assemble().expect("astar consumer")
}

fn astar_cc_producer(n: usize) -> Program {
    let mut a = Asm::new("astar-cc-producer");
    astar_prologue(&mut a, n);
    a.li(R30, 0);
    a.label("loop");
    astar_feed(&mut a);
    a.addi(R30, R30, 1);
    a.bne(R30, R2, "loop");
    a.halt();
    a.assemble().expect("astar cc producer")
}

fn astar_cc_consumer(n: usize) -> Program {
    let mut a = Asm::new("astar-cc-consumer");
    astar_prologue(&mut a, n);
    a.label("loop");
    astar_drain(&mut a);
    astar_update(&mut a);
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "loop");
    astar_epilogue(&mut a);
    a.assemble().expect("astar cc consumer")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every generated program for every benchmark, role, and transport
    /// assembles, is non-trivial, and ends with `halt`.
    #[test]
    fn all_programs_assemble_and_halt() {
        let n = 64;
        for b in CommBench::ALL {
            let mut progs = vec![
                seq(b, n),
                comp1t(b, n),
                compcomm_producer(b, n),
                compcomm_consumer(b, n),
            ];
            for t in [Transport::SplPass, Transport::Hwq, Transport::Swq] {
                progs.push(producer(b, n, t));
                progs.push(consumer(b, n, t));
            }
            for p in progs {
                assert!(
                    p.len() > 4,
                    "{}: suspiciously short program {}",
                    b.name(),
                    p.name()
                );
                assert_eq!(
                    p.insts().last().copied(),
                    Some(remap_isa::Inst::Halt),
                    "{}: {} must end with halt",
                    b.name(),
                    p.name()
                );
            }
        }
    }

    /// The branchy and branch-free wc step helpers keep the counter
    /// registers consistent (structural check: they never write r1-r4).
    #[test]
    fn wc_helpers_preserve_loop_registers() {
        let mut a = Asm::new("t");
        wc_classify_branchy(&mut a, R7);
        wc_unpack_totals(&mut a, 8);
        a.halt();
        let p = a.assemble().unwrap();
        for inst in p.insts() {
            if let Some(d) = inst.dest() {
                assert!(
                    ![R1, R2, R3, R4].contains(&d),
                    "helper clobbers loop register {d}"
                );
            }
        }
    }

    /// The software-queue emitters honor their documented register
    /// contract (clobbers limited to r24-r26 plus the destination).
    #[test]
    fn swq_register_contract() {
        let mut a = Asm::new("t");
        swq_prologue(&mut a);
        swq_send(&mut a, R7);
        swq_recv(&mut a, R8);
        a.halt();
        let p = a.assemble().unwrap();
        for inst in p.insts().iter().skip(4) {
            if let Some(d) = inst.dest() {
                assert!(
                    [R8, R23, R24, R25, R26].contains(&d),
                    "swq helper writes unexpected register {d}"
                );
            }
        }
    }
}

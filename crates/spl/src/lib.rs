//! # remap-spl
//!
//! The Specialized Programmable Logic (SPL) fabric of the ReMAP paper: a
//! highly pipelined, row-based reconfigurable fabric shared by up to four
//! cores, clocked at one quarter of the core frequency (500 MHz vs 2 GHz).
//!
//! The structural model follows §II-A of the paper:
//!
//! * 24 rows of 16 eight-bit cells (each cell: a 4-LUT, 2-LUTs plus a fast
//!   carry tree, barrel shifters, and flip-flops) — see [`RowModel`];
//! * each row completes its computation in one SPL cycle, and the fabric is
//!   fully pipelined: a new operation may enter row 0 every SPL cycle;
//! * **virtualization** (PipeRench-style): a function needing `V` virtual
//!   rows on a partition with `P` physical rows still executes, with
//!   initiation interval `ceil(V / P)` — guaranteed execution at a possible
//!   loss of throughput;
//! * **spatial partitioning** into up to four virtual clusters, each with a
//!   contiguous range of rows and its own pipeline;
//! * **temporal sharing**: pending requests from the attached cores are
//!   issued round-robin.
//!
//! Functions are registered as [`SplFunction`]s: a row count (hardware
//! requirement) plus a semantic closure evaluated when the operation
//! completes. Operations read 16-byte input-queue entries staged by
//! `spl_load` and deliver 64-bit results to per-core output queues, which is
//! exactly the decoupled queue interface the cores see.
//!
//! ```
//! use remap_spl::{Spl, SplConfig, SplFunction, Dest};
//!
//! let mut spl = Spl::new(SplConfig::paper(4));
//! // A 4-row function: add the two u32s of the input entry.
//! spl.register(1, SplFunction::compute("add2", 4, Dest::SelfCore, |e| {
//!     (e.u32(0) as u64) + (e.u32(4) as u64)
//! }));
//! spl.stage(0, 0, 4, 20);
//! spl.stage(0, 4, 4, 22);
//! assert!(spl.request(0, 1, 0).is_ok());
//! let mut cycle = 0;
//! loop {
//!     cycle += 1;
//!     spl.tick(cycle);
//!     if let Some(v) = spl.pop_output(0) { assert_eq!(v, 42); break; }
//!     assert!(cycle < 100, "operation must complete");
//! }
//! ```

mod fabric;
mod function;
mod queue;
mod row;

pub use fabric::{RequestError, Spl, SplConfig, SplEvent, SplFault, SplStats};
pub use function::{Dest, Entry, FunctionKind, SplFunction};
pub use queue::{InputQueue, OutputQueue, SealedEntry};
pub use row::{CellModel, RowModel};

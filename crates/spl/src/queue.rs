//! Per-core SPL input and output queues (the decoupled interface of
//! Figure 2(b)).

use crate::function::Entry;

/// A sealed input-queue entry awaiting fabric issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SealedEntry {
    /// The staged data with valid bits.
    pub entry: Entry,
    /// Requested SPL configuration.
    pub cfg: u16,
    /// Resolved destination core for compute operations (`usize::MAX` means
    /// "barrier — destination is every participant").
    pub dest_core: usize,
}

/// A core's SPL input queue: one staging entry under construction plus a
/// FIFO of sealed entries waiting for the fabric.
#[derive(Debug, Clone)]
pub struct InputQueue {
    staging: Entry,
    sealed: Vec<SealedEntry>,
    capacity: usize,
    /// Peak occupancy observed (for reports).
    pub peak: usize,
}

impl InputQueue {
    /// Creates an empty input queue holding up to `capacity` sealed entries.
    pub fn new(capacity: usize) -> InputQueue {
        InputQueue {
            staging: Entry::default(),
            sealed: Vec::new(),
            capacity,
            peak: 0,
        }
    }

    /// Stages bytes into the entry under construction (always succeeds: the
    /// staging register is renamed per entry).
    pub fn stage(&mut self, offset: u8, nbytes: u8, value: u64) {
        self.staging.stage(offset, nbytes, value);
    }

    /// Seals the staging entry with the given configuration and destination.
    /// Fails (returning `false`) when the sealed FIFO is full — the caller
    /// retries, modelling back-pressure on the producing core.
    pub fn seal(&mut self, cfg: u16, dest_core: usize) -> bool {
        if self.sealed.len() >= self.capacity {
            return false;
        }
        self.sealed.push(SealedEntry {
            entry: self.staging,
            cfg,
            dest_core,
        });
        self.staging = Entry::default();
        self.peak = self.peak.max(self.sealed.len());
        true
    }

    /// The entry at the head of the sealed FIFO.
    pub fn head(&self) -> Option<&SealedEntry> {
        self.sealed.first()
    }

    /// Pops the head entry (fabric issue).
    pub fn pop(&mut self) -> Option<SealedEntry> {
        if self.sealed.is_empty() {
            None
        } else {
            Some(self.sealed.remove(0))
        }
    }

    /// Number of sealed entries waiting.
    pub fn len(&self) -> usize {
        self.sealed.len()
    }

    /// Whether no sealed entries are waiting.
    pub fn is_empty(&self) -> bool {
        self.sealed.is_empty()
    }

    /// Whether a [`InputQueue::seal`] would be accepted right now (pure
    /// mirror of its admission check, for the quiescence analysis).
    pub fn can_seal(&self) -> bool {
        self.sealed.len() < self.capacity
    }

    /// Serializes the queue contents (checkpoint support).
    pub fn save_state(&self, w: &mut remap_snap::Writer) {
        save_entry(w, &self.staging);
        w.put_len(self.sealed.len());
        for s in &self.sealed {
            save_entry(w, &s.entry);
            w.put_u16(s.cfg);
            w.put_usize(s.dest_core);
        }
        w.put_usize(self.peak);
    }

    /// Restores state written by [`InputQueue::save_state`] onto a queue of
    /// identical capacity.
    pub fn load_state(&mut self, r: &mut remap_snap::Reader) -> Result<(), remap_snap::SnapError> {
        self.staging = load_entry(r)?;
        let n = r.get_len(self.capacity)?;
        self.sealed.clear();
        for _ in 0..n {
            self.sealed.push(SealedEntry {
                entry: load_entry(r)?,
                cfg: r.get_u16()?,
                dest_core: r.get_usize()?,
            });
        }
        self.peak = r.get_usize()?;
        Ok(())
    }
}

fn save_entry(w: &mut remap_snap::Writer, e: &Entry) {
    w.put_bytes(&e.bytes);
    w.put_u16(e.valid);
}

fn load_entry(r: &mut remap_snap::Reader) -> Result<Entry, remap_snap::SnapError> {
    let mut bytes = [0u8; 16];
    bytes.copy_from_slice(r.get_bytes(16)?);
    Ok(Entry {
        bytes,
        valid: r.get_u16()?,
    })
}

/// A core's SPL output queue: results the core pops with `spl_store`.
///
/// Space is *reserved* when an operation issues to the fabric and filled
/// when it completes, so the fabric never produces a result it cannot
/// deliver (back-pressure at issue).
#[derive(Debug, Clone)]
pub struct OutputQueue {
    ready: Vec<u64>,
    reserved: usize,
    capacity: usize,
    /// Peak occupancy observed.
    pub peak: usize,
}

impl OutputQueue {
    /// Creates an empty output queue of the given capacity.
    pub fn new(capacity: usize) -> OutputQueue {
        OutputQueue {
            ready: Vec::new(),
            reserved: 0,
            capacity,
            peak: 0,
        }
    }

    /// Attempts to reserve a result slot; `false` when the queue (including
    /// reservations) is full.
    pub fn reserve(&mut self) -> bool {
        if self.ready.len() + self.reserved >= self.capacity {
            return false;
        }
        self.reserved += 1;
        true
    }

    /// Releases a reservation without delivering (used when a multi-output
    /// operation cannot reserve *all* of its destinations this cycle).
    ///
    /// # Panics
    ///
    /// Panics if no slot was reserved.
    pub fn unreserve(&mut self) {
        assert!(self.reserved > 0, "unreserve without reservation");
        self.reserved -= 1;
    }

    /// Delivers a result into a previously reserved slot.
    ///
    /// # Panics
    ///
    /// Panics if no slot was reserved.
    pub fn deliver(&mut self, value: u64) {
        assert!(self.reserved > 0, "deliver without reservation");
        self.reserved -= 1;
        self.ready.push(value);
        self.peak = self.peak.max(self.ready.len() + self.reserved);
    }

    /// Pops the oldest ready result.
    pub fn pop(&mut self) -> Option<u64> {
        if self.ready.is_empty() {
            None
        } else {
            Some(self.ready.remove(0))
        }
    }

    /// Ready results currently queued.
    pub fn len(&self) -> usize {
        self.ready.len()
    }

    /// Whether no results are ready.
    pub fn is_empty(&self) -> bool {
        self.ready.is_empty()
    }

    /// Serializes the queue contents (checkpoint support).
    pub fn save_state(&self, w: &mut remap_snap::Writer) {
        w.put_len(self.ready.len());
        for &v in &self.ready {
            w.put_u64(v);
        }
        w.put_usize(self.reserved);
        w.put_usize(self.peak);
    }

    /// Restores state written by [`OutputQueue::save_state`] onto a queue of
    /// identical capacity.
    pub fn load_state(&mut self, r: &mut remap_snap::Reader) -> Result<(), remap_snap::SnapError> {
        let n = r.get_len(self.capacity)?;
        self.ready.clear();
        for _ in 0..n {
            self.ready.push(r.get_u64()?);
        }
        self.reserved = r.get_usize()?;
        if self.ready.len() + self.reserved > self.capacity {
            return Err(remap_snap::SnapError::Corrupt(format!(
                "output queue over capacity ({} ready + {} reserved > {})",
                self.ready.len(),
                self.reserved,
                self.capacity
            )));
        }
        self.peak = r.get_usize()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_queue_fifo_and_backpressure() {
        let mut q = InputQueue::new(2);
        q.stage(0, 4, 1);
        assert!(q.seal(10, 0));
        q.stage(0, 4, 2);
        assert!(q.seal(11, 0));
        q.stage(0, 4, 3);
        assert!(!q.seal(12, 0), "queue full");
        assert_eq!(q.len(), 2);
        let a = q.pop().unwrap();
        assert_eq!(a.cfg, 10);
        assert_eq!(a.entry.u32(0), 1);
        // After pop, the pending staged value (3) can be sealed.
        assert!(q.seal(12, 0));
        assert_eq!(q.pop().unwrap().cfg, 11);
        assert_eq!(q.pop().unwrap().cfg, 12);
        assert!(q.pop().is_none());
        assert_eq!(q.peak, 2);
    }

    #[test]
    fn staging_resets_after_seal() {
        let mut q = InputQueue::new(4);
        q.stage(0, 4, 0xffff_ffff);
        assert!(q.seal(1, 0));
        q.stage(4, 4, 7);
        assert!(q.seal(2, 0));
        q.pop();
        let e = q.pop().unwrap();
        assert_eq!(e.entry.u32(0), 0, "old bytes must not leak into new entry");
        assert_eq!(e.entry.u32(4), 7);
    }

    #[test]
    fn output_queue_reserve_deliver_pop() {
        let mut q = OutputQueue::new(2);
        assert!(q.reserve());
        assert!(q.reserve());
        assert!(!q.reserve(), "capacity includes reservations");
        q.deliver(5);
        assert_eq!(q.len(), 1);
        assert!(!q.reserve(), "still full: one ready + one reserved");
        q.deliver(6);
        assert_eq!(q.pop(), Some(5));
        assert_eq!(q.pop(), Some(6));
        assert_eq!(q.pop(), None);
        assert!(q.reserve());
    }

    #[test]
    #[should_panic(expected = "deliver without reservation")]
    fn deliver_without_reserve_panics() {
        let mut q = OutputQueue::new(2);
        q.deliver(1);
    }
}

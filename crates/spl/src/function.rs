//! SPL function configurations: hardware requirements plus semantics.

use std::fmt;
use std::sync::Arc;

/// A sealed 16-byte input-queue entry (one SPL row width of data).
///
/// `spl_load` instructions place register bytes at chosen alignments; the
/// accessors here are what function closures use to pull typed operands back
/// out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Entry {
    /// Raw entry bytes.
    pub bytes: [u8; 16],
    /// Valid bits, one per byte (Figure 2(b)).
    pub valid: u16,
}

impl Entry {
    /// Stages `nbytes` low-order bytes of `value` at byte `offset`,
    /// saturating at the entry boundary.
    pub fn stage(&mut self, offset: u8, nbytes: u8, value: u64) {
        for i in 0..nbytes.min(16) {
            let idx = offset as usize + i as usize;
            if idx < 16 {
                // Bytes past the register width stage as zero; shifting by
                // >= 64 would otherwise overflow.
                self.bytes[idx] = if i < 8 {
                    (value >> (8 * i as u32)) as u8
                } else {
                    0
                };
                self.valid |= 1 << idx;
            }
        }
    }

    /// Little-endian `u32` at byte `offset`.
    pub fn u32(&self, offset: usize) -> u32 {
        let mut b = [0u8; 4];
        for (i, out) in b.iter_mut().enumerate() {
            *out = self.bytes.get(offset + i).copied().unwrap_or(0);
        }
        u32::from_le_bytes(b)
    }

    /// Little-endian `i32` at byte `offset`.
    pub fn i32(&self, offset: usize) -> i32 {
        self.u32(offset) as i32
    }

    /// Little-endian `u64` at byte `offset`.
    pub fn u64(&self, offset: usize) -> u64 {
        (self.u32(offset) as u64) | ((self.u32(offset + 4) as u64) << 32)
    }

    /// Single byte at `offset` (0 if out of range).
    pub fn u8(&self, offset: usize) -> u8 {
        self.bytes.get(offset).copied().unwrap_or(0)
    }

    /// Whether the byte at `offset` has been staged.
    pub fn is_valid(&self, offset: usize) -> bool {
        offset < 16 && (self.valid >> offset) & 1 == 1
    }
}

/// Destination of a compute operation's result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dest {
    /// Result returns to the initiating core's output queue (individual
    /// computation, Figure 1(a)).
    SelfCore,
    /// Result is bypassed to the output queue of the core running the given
    /// thread (producer→consumer communication, Figure 1(b)). The thread is
    /// resolved to a core through the Thread-to-Core table at issue time.
    Thread(u32),
}

/// Semantics of a compute configuration: input entry → 64-bit result.
pub type ComputeFn = Arc<dyn Fn(&Entry) -> u64 + Send + Sync>;
/// Semantics of a barrier configuration: participants' entries → result.
pub type BarrierFn = Arc<dyn Fn(&[Entry]) -> u64 + Send + Sync>;

/// What kind of operation a configuration performs.
#[derive(Clone)]
pub enum FunctionKind {
    /// Ordinary computation on one input entry.
    Compute {
        /// Where the result goes.
        dest: Dest,
        /// Semantics: input entry → 64-bit result.
        eval: ComputeFn,
    },
    /// Barrier synchronization with an integrated global function
    /// (Figure 1(c)): consumes one entry per participant, broadcasts one
    /// result to every participant.
    Barrier {
        /// Semantics: participants' entries (in participant order) → result.
        eval: BarrierFn,
    },
}

impl fmt::Debug for FunctionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FunctionKind::Compute { dest, .. } => f
                .debug_struct("Compute")
                .field("dest", dest)
                .finish_non_exhaustive(),
            FunctionKind::Barrier { .. } => f.debug_struct("Barrier").finish_non_exhaustive(),
        }
    }
}

/// A configured SPL function: a name, the number of virtual rows it needs,
/// and its semantics.
///
/// The row count is the *hardware requirement* from which the fabric derives
/// latency (one SPL cycle per row) and, when it exceeds the physical rows of
/// the partition, the virtualization initiation interval.
#[derive(Debug, Clone)]
pub struct SplFunction {
    name: String,
    rows: u32,
    kind: FunctionKind,
}

impl SplFunction {
    /// Creates a compute configuration.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0`.
    pub fn compute(
        name: impl Into<String>,
        rows: u32,
        dest: Dest,
        eval: impl Fn(&Entry) -> u64 + Send + Sync + 'static,
    ) -> SplFunction {
        assert!(rows > 0, "a function needs at least one row");
        SplFunction {
            name: name.into(),
            rows,
            kind: FunctionKind::Compute {
                dest,
                eval: Arc::new(eval),
            },
        }
    }

    /// Creates a barrier configuration with an integrated global function.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0`.
    pub fn barrier(
        name: impl Into<String>,
        rows: u32,
        eval: impl Fn(&[Entry]) -> u64 + Send + Sync + 'static,
    ) -> SplFunction {
        assert!(rows > 0, "a function needs at least one row");
        SplFunction {
            name: name.into(),
            rows,
            kind: FunctionKind::Barrier {
                eval: Arc::new(eval),
            },
        }
    }

    /// The function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Virtual rows required.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// The operation kind and semantics.
    pub fn kind(&self) -> &FunctionKind {
        &self.kind
    }

    /// Whether this is a barrier configuration (the paper flags this in the
    /// SPL function configuration).
    pub fn is_barrier(&self) -> bool {
        matches!(self.kind, FunctionKind::Barrier { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_staging_and_accessors() {
        let mut e = Entry::default();
        e.stage(0, 4, 0xdead_beef);
        e.stage(4, 4, 0x1234_5678);
        e.stage(12, 1, 0xff);
        assert_eq!(e.u32(0), 0xdead_beef);
        assert_eq!(e.u32(4), 0x1234_5678);
        assert_eq!(e.u8(12), 0xff);
        assert_eq!(e.u64(0), 0x1234_5678_dead_beef);
        assert!(e.is_valid(0));
        assert!(e.is_valid(7));
        assert!(!e.is_valid(8));
        assert!(e.is_valid(12));
        assert_eq!(e.i32(0), 0xdead_beefu32 as i32);
    }

    #[test]
    fn entry_stage_clips_at_boundary() {
        let mut e = Entry::default();
        e.stage(14, 4, 0xaabb_ccdd); // only 2 bytes fit
        assert_eq!(e.u8(14), 0xdd);
        assert_eq!(e.u8(15), 0xcc);
        assert!(!e.is_valid(16));
    }

    #[test]
    fn compute_function_metadata() {
        let f = SplFunction::compute("mc", 10, Dest::Thread(3), |e| e.u32(0) as u64);
        assert_eq!(f.name(), "mc");
        assert_eq!(f.rows(), 10);
        assert!(!f.is_barrier());
        match f.kind() {
            FunctionKind::Compute { dest, eval } => {
                assert_eq!(*dest, Dest::Thread(3));
                let mut e = Entry::default();
                e.stage(0, 4, 9);
                assert_eq!(eval(&e), 9);
            }
            _ => panic!("expected compute"),
        }
    }

    #[test]
    fn barrier_function_metadata() {
        let f = SplFunction::barrier("gmin", 4, |entries| {
            entries.iter().map(|e| e.u32(0)).min().unwrap_or(0) as u64
        });
        assert!(f.is_barrier());
        match f.kind() {
            FunctionKind::Barrier { eval } => {
                let mut a = Entry::default();
                a.stage(0, 4, 30);
                let mut b = Entry::default();
                b.stage(0, 4, 12);
                assert_eq!(eval(&[a, b]), 12);
            }
            _ => panic!("expected barrier"),
        }
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn zero_rows_panics() {
        let _ = SplFunction::compute("bad", 0, Dest::SelfCore, |_| 0);
    }

    #[test]
    fn debug_not_empty() {
        let f = SplFunction::compute("x", 1, Dest::SelfCore, |_| 0);
        assert!(!format!("{f:?}").is_empty());
    }
}

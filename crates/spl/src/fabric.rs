//! The shared SPL fabric: scheduling, virtualization, partitioning, and
//! temporal sharing.

use crate::function::{FunctionKind, SplFunction};
use crate::queue::{InputQueue, OutputQueue};
use crate::row::RowModel;
use remap_fault::{Roller, SiteCfg, SiteCounters};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Deterministic row-output bit-flip injection for one fabric.
///
/// One fault roll per *completing operation* (an architectural event, so the
/// stream is identical whether the surrounding simulator ticks or skips).
/// With parity protection the flip is caught at the output bus and the
/// operation replays after a row scrub; without it the flipped result is
/// delivered silently.
#[derive(Debug, Clone)]
pub struct SplFault {
    roller: Roller,
    bitflip: SiteCfg,
    parity: bool,
    replay_ticks: u64,
    counters: SiteCounters,
}

impl SplFault {
    /// A fault stream for `site` under master `seed`. `replay_ticks` is the
    /// scrub-plus-replay cost in SPL cycles (clamped to at least 1).
    pub fn new(
        seed: u64,
        site: u64,
        bitflip: SiteCfg,
        parity: bool,
        replay_ticks: u64,
    ) -> SplFault {
        SplFault {
            roller: Roller::new(seed, site),
            bitflip,
            parity,
            replay_ticks: replay_ticks.max(1),
            counters: SiteCounters::default(),
        }
    }

    /// Accounting so far.
    pub fn counters(&self) -> SiteCounters {
        self.counters
    }

    /// Serializes the dynamic fault-stream state (checkpoint support). The
    /// site configuration is rebuilt from the fault plan on restore.
    pub fn save_state(&self, w: &mut remap_snap::Writer) {
        w.put_u64(self.roller.event());
        w.put_u64(self.counters.injected);
        w.put_u64(self.counters.detected);
        w.put_u64(self.counters.recovered);
        w.put_u64(self.counters.silent);
    }

    /// Restores state written by [`SplFault::save_state`] onto a stream
    /// freshly built from the same fault plan.
    pub fn load_state(&mut self, r: &mut remap_snap::Reader) -> Result<(), remap_snap::SnapError> {
        self.roller.set_event(r.get_u64()?);
        self.counters.injected = r.get_u64()?;
        self.counters.detected = r.get_u64()?;
        self.counters.recovered = r.get_u64()?;
        self.counters.silent = r.get_u64()?;
        Ok(())
    }
}

/// Fabric geometry and sharing configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplConfig {
    /// Physical rows in the fabric (24 in the paper).
    pub rows: u32,
    /// Cores attached to (sharing) this fabric.
    pub n_cores: usize,
    /// Spatial partitions (1–4). Rows are split evenly.
    pub partitions: usize,
    /// Which partition each core issues to (`core_partition[core]`).
    pub core_partition: Vec<usize>,
    /// Sealed input-queue entries per core.
    pub input_capacity: usize,
    /// Output-queue results per core.
    pub output_capacity: usize,
    /// Structural row model (area/power inventory).
    pub row_model: RowModel,
}

impl SplConfig {
    /// The paper's fabric: 24 rows, unpartitioned, shared by `n_cores`
    /// cores, 8-entry queues.
    pub fn paper(n_cores: usize) -> SplConfig {
        SplConfig {
            rows: 24,
            n_cores,
            partitions: 1,
            core_partition: vec![0; n_cores],
            input_capacity: 8,
            output_capacity: 8,
            row_model: RowModel::default(),
        }
    }

    /// A fabric with `rows` physical rows (e.g. 12 when a communicating pair
    /// is assumed to own half of the shared SPL, as in §V-A).
    pub fn with_rows(n_cores: usize, rows: u32) -> SplConfig {
        SplConfig {
            rows,
            ..SplConfig::paper(n_cores)
        }
    }

    /// Spatially partitioned fabric: cores are assigned to the `partitions`
    /// virtual clusters round-robin.
    pub fn partitioned(n_cores: usize, partitions: usize) -> SplConfig {
        let core_partition = (0..n_cores).map(|c| c % partitions).collect();
        SplConfig {
            partitions,
            core_partition,
            ..SplConfig::paper(n_cores)
        }
    }

    /// Rows in each partition.
    pub fn partition_rows(&self) -> u32 {
        self.rows / self.partitions as u32
    }
}

/// Fabric activity statistics, consumed by the power model and reports.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SplStats {
    /// Compute operations completed.
    pub compute_ops: u64,
    /// Barrier operations completed.
    pub barrier_ops: u64,
    /// Total virtual-row activations (one row evaluated for one SPL cycle).
    pub row_activations: u64,
    /// Issue attempts deferred because the partition's initiation interval
    /// had not elapsed.
    pub stall_rows: u64,
    /// Issue attempts deferred because a destination output queue was full.
    pub stall_output_full: u64,
    /// Results delivered to output queues.
    pub results_delivered: u64,
}

/// Errors returned by [`Spl::request`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestError {
    /// The configuration id has not been registered.
    UnknownConfig(u16),
    /// The core's sealed input queue is full; retry next cycle.
    QueueFull,
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::UnknownConfig(c) => write!(f, "unknown SPL configuration {c}"),
            RequestError::QueueFull => write!(f, "SPL input queue full"),
        }
    }
}

impl Error for RequestError {}

/// A completed-delivery notification, used by the system layer to maintain
/// the Thread-to-Core table's in-flight counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplEvent {
    /// Core that initiated the operation.
    pub from_core: usize,
    /// Core whose output queue received the result.
    pub dest_core: usize,
    /// Configuration id.
    pub cfg: u16,
}

/// Destination set of an in-flight operation. Compute operations have
/// exactly one destination and must not allocate on the issue path; only
/// barrier broadcasts (rare) carry a heap-allocated participant list.
#[derive(Debug, Clone)]
enum Dests {
    One(usize),
    Many(Vec<usize>),
}

impl Dests {
    fn as_slice(&self) -> &[usize] {
        match self {
            Dests::One(d) => std::slice::from_ref(d),
            Dests::Many(v) => v,
        }
    }
}

#[derive(Debug, Clone)]
struct Inflight {
    done_at: u64,
    result: u64,
    dests: Dests,
    from: usize,
    cfg: u16,
    barrier: bool,
    rows: u32,
}

#[derive(Debug, Clone, Default)]
struct PartState {
    next_issue_at: u64,
    inflight: Vec<Inflight>,
}

#[derive(Debug, Clone)]
struct ReleasedBarrier {
    cfg: u16,
    participants: Vec<usize>,
}

/// The shared SPL fabric.
///
/// The fabric is advanced once per *SPL cycle* (one quarter of the core
/// clock) with [`Spl::tick`]. Cores interact through the staged-entry /
/// sealed-request / output-pop interface, which the system layer adapts to
/// the `spl_load` / `spl_init` / `spl_store` instructions.
pub struct Spl {
    cfg: SplConfig,
    funcs: HashMap<u16, SplFunction>,
    inputs: Vec<InputQueue>,
    outputs: Vec<OutputQueue>,
    parts: Vec<PartState>,
    released: Vec<ReleasedBarrier>,
    rr: usize,
    stats: SplStats,
    fault: Option<Box<SplFault>>,
}

impl fmt::Debug for Spl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Spl")
            .field("cfg", &self.cfg)
            .field("configs", &self.funcs.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Spl {
    /// Creates an idle fabric.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent configuration (no rows, partitions that do not
    /// divide the rows, or a core mapped to a missing partition).
    pub fn new(cfg: SplConfig) -> Spl {
        assert!(cfg.rows > 0, "fabric needs rows");
        assert!(
            (1..=4).contains(&cfg.partitions),
            "1 to 4 partitions supported (got {})",
            cfg.partitions
        );
        assert_eq!(
            cfg.rows % cfg.partitions as u32,
            0,
            "partitions must divide the row count evenly"
        );
        assert_eq!(
            cfg.core_partition.len(),
            cfg.n_cores,
            "one partition entry per core"
        );
        assert!(
            cfg.core_partition.iter().all(|&p| p < cfg.partitions),
            "core mapped to nonexistent partition"
        );
        Spl {
            inputs: (0..cfg.n_cores)
                .map(|_| InputQueue::new(cfg.input_capacity))
                .collect(),
            outputs: (0..cfg.n_cores)
                .map(|_| OutputQueue::new(cfg.output_capacity))
                .collect(),
            parts: vec![PartState::default(); cfg.partitions],
            released: Vec::new(),
            rr: 0,
            stats: SplStats::default(),
            fault: None,
            funcs: HashMap::new(),
            cfg,
        }
    }

    /// Installs (or clears) the fault-injection stream for this fabric.
    pub fn set_fault(&mut self, fault: Option<SplFault>) {
        self.fault = fault.map(Box::new);
    }

    /// Fault accounting so far (all zeros when no stream is installed).
    pub fn fault_counters(&self) -> SiteCounters {
        self.fault.as_ref().map(|f| f.counters).unwrap_or_default()
    }

    /// The fabric configuration.
    pub fn config(&self) -> &SplConfig {
        &self.cfg
    }

    /// Activity statistics.
    pub fn stats(&self) -> &SplStats {
        &self.stats
    }

    /// Registers (or replaces) a function configuration.
    pub fn register(&mut self, id: u16, func: SplFunction) {
        self.funcs.insert(id, func);
    }

    /// Looks up a registered configuration.
    pub fn function(&self, id: u16) -> Option<&SplFunction> {
        self.funcs.get(&id)
    }

    /// Iterates over all registered configurations.
    pub fn functions(&self) -> impl Iterator<Item = (u16, &SplFunction)> {
        self.funcs.iter().map(|(&id, f)| (id, f))
    }

    /// Stages bytes into `core`'s input entry under construction
    /// (`spl_load`).
    pub fn stage(&mut self, core: usize, offset: u8, nbytes: u8, value: u64) {
        self.inputs[core].stage(offset, nbytes, value);
    }

    /// Seals `core`'s staged entry and requests configuration `cfg`
    /// (`spl_init`). For compute configurations, `dest_core` must already be
    /// resolved (via the Thread-to-Core table for [`Dest::Thread`](crate::Dest::Thread)); for
    /// barrier configurations it is ignored.
    ///
    /// # Errors
    ///
    /// [`RequestError::UnknownConfig`] for unregistered ids;
    /// [`RequestError::QueueFull`] when the sealed queue is full (the caller
    /// retries, stalling the requesting core).
    pub fn request(&mut self, core: usize, cfg: u16, dest_core: usize) -> Result<(), RequestError> {
        if !self.funcs.contains_key(&cfg) {
            return Err(RequestError::UnknownConfig(cfg));
        }
        if self.inputs[core].seal(cfg, dest_core) {
            Ok(())
        } else {
            Err(RequestError::QueueFull)
        }
    }

    /// Sealed entries waiting in `core`'s input queue.
    pub fn input_pending(&self, core: usize) -> usize {
        self.inputs[core].len()
    }

    /// Whether `core`'s sealed input queue would admit another request right
    /// now (pure mirror of [`Spl::request`]'s back-pressure check).
    pub fn can_seal(&self, core: usize) -> bool {
        self.inputs[core].can_seal()
    }

    /// Results ready in `core`'s output queue.
    pub fn output_ready(&self, core: usize) -> usize {
        self.outputs[core].len()
    }

    /// Pops the oldest result from `core`'s output queue (`spl_store`).
    pub fn pop_output(&mut self, core: usize) -> Option<u64> {
        self.outputs[core].pop()
    }

    /// Marks a barrier configuration as released: all participants have
    /// arrived according to the Barrier table. The fabric issues the global
    /// function once every participant's sealed-queue *head* is the matching
    /// barrier entry (the paper's "loads from all of the cores have reached
    /// the head of their respective input queues").
    pub fn release_barrier(&mut self, cfg: u16, participants: Vec<usize>) {
        self.released.push(ReleasedBarrier { cfg, participants });
    }

    /// Advances the fabric by one SPL cycle (`now` is the SPL cycle number,
    /// monotonically increasing). Returns delivery events for Thread-to-Core
    /// in-flight bookkeeping.
    ///
    /// Convenience wrapper over [`Spl::tick_into`] that allocates a fresh
    /// event vector; hot loops should hold a reusable buffer and call
    /// `tick_into` directly.
    pub fn tick(&mut self, now: u64) -> Vec<SplEvent> {
        let mut events = Vec::new();
        self.tick_into(now, &mut events);
        events
    }

    /// Advances the fabric by one SPL cycle, appending delivery events to
    /// `events` (which the caller clears and reuses across cycles). The
    /// per-cycle path performs no heap allocation: completions drain into
    /// the caller's buffer and compute issues carry a single inline
    /// destination.
    pub fn tick_into(&mut self, now: u64, events: &mut Vec<SplEvent>) {
        // 1. Complete in-flight operations.
        let mut fault = self.fault.take();
        for part in &mut self.parts {
            let mut i = 0;
            while i < part.inflight.len() {
                if part.inflight[i].done_at <= now {
                    // One fault roll per completing operation: detected
                    // flips scrub the rows and replay the operation in
                    // place; undetected flips corrupt the delivered result.
                    if let Some(f) = fault.as_deref_mut() {
                        let d = f.roller.draw();
                        if d.fires(&f.bitflip) {
                            f.counters.injected += 1;
                            if f.parity {
                                f.counters.detected += 1;
                                f.counters.recovered += 1;
                                part.inflight[i].done_at = now + f.replay_ticks;
                                i += 1;
                                continue;
                            }
                            part.inflight[i].result ^= 1u64 << d.pick(64);
                            f.counters.silent += 1;
                        }
                    }
                    let op = part.inflight.remove(i);
                    for &d in op.dests.as_slice() {
                        self.outputs[d].deliver(op.result);
                        self.stats.results_delivered += 1;
                        events.push(SplEvent {
                            from_core: op.from,
                            dest_core: d,
                            cfg: op.cfg,
                        });
                    }
                    if op.barrier {
                        self.stats.barrier_ops += 1;
                    } else {
                        self.stats.compute_ops += 1;
                    }
                    self.stats.row_activations += op.rows as u64;
                } else {
                    i += 1;
                }
            }
        }
        self.fault = fault;
        // 2. Issue released barriers whose participants are all at head.
        let mut bi = 0;
        while bi < self.released.len() {
            if self.try_issue_barrier(bi, now) {
                self.released.remove(bi);
            } else {
                bi += 1;
            }
        }
        // 3. Issue compute requests round-robin across the sharing cores.
        let n = self.cfg.n_cores;
        for k in 0..n {
            let core = (self.rr + k) % n;
            self.try_issue_compute(core, now);
        }
        self.rr = (self.rr + 1) % n.max(1);
    }

    /// Quiescence probe: the earliest SPL cycle strictly after `now` at which
    /// ticking the fabric can change any observable state (queues, in-flight
    /// ops, or statistics — stall counters included).
    ///
    /// * `None` — the fabric would act (issue, complete, or count a stall) on
    ///   the very next tick, so it must be ticked cycle by cycle.
    /// * `Some(t)` with `t < u64::MAX` — nothing can happen before SPL cycle
    ///   `t` (the earliest in-flight completion).
    /// * `Some(u64::MAX)` — purely reactive: only a new core request (or a
    ///   barrier release) can wake the fabric.
    ///
    /// The round-robin pointer still rotates on quiescent ticks; callers that
    /// bulk-skip must replicate that with [`Spl::skip_ticks`].
    pub fn next_event(&self, now: u64) -> Option<u64> {
        // A released barrier whose participants are all at head issues (or
        // counts a stall) on every tick.
        for rb in &self.released {
            if rb
                .participants
                .iter()
                .all(|&p| matches!(self.inputs[p].head(), Some(h) if h.cfg == rb.cfg))
            {
                return None;
            }
        }
        // A non-barrier head issues (or counts a stall) on every tick.
        // Barrier heads that are not released yet are inert: `try_issue_compute`
        // returns before touching any counter.
        for q in &self.inputs {
            if let Some(h) = q.head() {
                let func = self.funcs.get(&h.cfg).expect("validated at request");
                if !func.is_barrier() {
                    return None;
                }
            }
        }
        // Otherwise the only scheduled activity is in-flight completion.
        let mut wake = u64::MAX;
        for part in &self.parts {
            for op in &part.inflight {
                wake = wake.min(op.done_at.max(now + 1));
            }
        }
        Some(wake)
    }

    /// Bulk-advances the fabric over `ticks` quiescent SPL cycles. The only
    /// per-tick mutation in the quiescent state is the round-robin pointer
    /// rotation at the end of [`Spl::tick_into`], replicated here so a
    /// skipped run stays bit-identical to a ticked one.
    pub fn skip_ticks(&mut self, ticks: u64) {
        let n = self.cfg.n_cores.max(1);
        self.rr = (self.rr + (ticks % n as u64) as usize) % n;
    }

    fn ii_for(&self, rows: u32) -> u64 {
        rows.div_ceil(self.cfg.partition_rows()) as u64
    }

    fn try_issue_compute(&mut self, core: usize, now: u64) {
        let Some(head) = self.inputs[core].head() else {
            return;
        };
        let cfg_id = head.cfg;
        let dest = head.dest_core;
        let func = self.funcs.get(&cfg_id).expect("validated at request");
        if func.is_barrier() {
            return; // waits for release + all-heads
        }
        let rows = func.rows();
        let part_id = self.cfg.core_partition[core];
        if self.parts[part_id].next_issue_at > now {
            self.stats.stall_rows += 1;
            return;
        }
        if !self.outputs[dest].reserve() {
            self.stats.stall_output_full += 1;
            return;
        }
        let sealed = self.inputs[core].pop().expect("head exists");
        let result = match func.kind() {
            FunctionKind::Compute { eval, .. } => eval(&sealed.entry),
            FunctionKind::Barrier { .. } => unreachable!("filtered above"),
        };
        let ii = self.ii_for(rows);
        let part = &mut self.parts[part_id];
        part.next_issue_at = now + ii;
        part.inflight.push(Inflight {
            done_at: now + rows as u64 + 1,
            result,
            dests: Dests::One(dest),
            from: core,
            cfg: cfg_id,
            barrier: false,
            rows,
        });
    }

    /// Serializes all dynamic fabric state (checkpoint support). The
    /// function registry and geometry are static and are not written —
    /// a restored fabric must be built with the same configuration and
    /// registrations.
    pub fn save_state(&self, w: &mut remap_snap::Writer) {
        w.put_len(self.inputs.len());
        for q in &self.inputs {
            q.save_state(w);
        }
        for q in &self.outputs {
            q.save_state(w);
        }
        w.put_len(self.parts.len());
        for p in &self.parts {
            w.put_u64(p.next_issue_at);
            w.put_len(p.inflight.len());
            for op in &p.inflight {
                w.put_u64(op.done_at);
                w.put_u64(op.result);
                match &op.dests {
                    Dests::One(d) => {
                        w.put_u8(0);
                        w.put_usize(*d);
                    }
                    Dests::Many(v) => {
                        w.put_u8(1);
                        w.put_len(v.len());
                        for &d in v {
                            w.put_usize(d);
                        }
                    }
                }
                w.put_usize(op.from);
                w.put_u16(op.cfg);
                w.put_bool(op.barrier);
                w.put_u32(op.rows);
            }
        }
        w.put_len(self.released.len());
        for rb in &self.released {
            w.put_u16(rb.cfg);
            w.put_len(rb.participants.len());
            for &p in &rb.participants {
                w.put_usize(p);
            }
        }
        w.put_usize(self.rr);
        w.put_u64(self.stats.compute_ops);
        w.put_u64(self.stats.barrier_ops);
        w.put_u64(self.stats.row_activations);
        w.put_u64(self.stats.stall_rows);
        w.put_u64(self.stats.stall_output_full);
        w.put_u64(self.stats.results_delivered);
        match &self.fault {
            None => w.put_bool(false),
            Some(f) => {
                w.put_bool(true);
                f.save_state(w);
            }
        }
    }

    /// Restores state written by [`Spl::save_state`] onto a fabric freshly
    /// built with identical configuration, registrations, and fault plan.
    pub fn load_state(&mut self, r: &mut remap_snap::Reader) -> Result<(), remap_snap::SnapError> {
        r.get_exact_len(self.inputs.len())?;
        for q in &mut self.inputs {
            q.load_state(r)?;
        }
        for q in &mut self.outputs {
            q.load_state(r)?;
        }
        r.get_exact_len(self.parts.len())?;
        let n_cores = self.cfg.n_cores;
        for p in &mut self.parts {
            p.next_issue_at = r.get_u64()?;
            // In-flight count is bounded by the reserved output slots.
            let n = r.get_len(n_cores * self.cfg.output_capacity)?;
            p.inflight.clear();
            for _ in 0..n {
                let done_at = r.get_u64()?;
                let result = r.get_u64()?;
                let dests = match r.get_u8()? {
                    0 => Dests::One(r.get_usize()?),
                    1 => {
                        let k = r.get_len(n_cores)?;
                        let mut v = Vec::with_capacity(k);
                        for _ in 0..k {
                            v.push(r.get_usize()?);
                        }
                        Dests::Many(v)
                    }
                    other => {
                        return Err(remap_snap::SnapError::Corrupt(format!(
                            "bad SPL destination tag {other}"
                        )))
                    }
                };
                p.inflight.push(Inflight {
                    done_at,
                    result,
                    dests,
                    from: r.get_usize()?,
                    cfg: r.get_u16()?,
                    barrier: r.get_bool()?,
                    rows: r.get_u32()?,
                });
            }
        }
        let n = r.get_len(1 << 16)?;
        self.released.clear();
        for _ in 0..n {
            let cfg = r.get_u16()?;
            let k = r.get_len(n_cores)?;
            let mut participants = Vec::with_capacity(k);
            for _ in 0..k {
                participants.push(r.get_usize()?);
            }
            self.released.push(ReleasedBarrier { cfg, participants });
        }
        self.rr = r.get_usize()?;
        self.stats.compute_ops = r.get_u64()?;
        self.stats.barrier_ops = r.get_u64()?;
        self.stats.row_activations = r.get_u64()?;
        self.stats.stall_rows = r.get_u64()?;
        self.stats.stall_output_full = r.get_u64()?;
        self.stats.results_delivered = r.get_u64()?;
        let has_fault = r.get_bool()?;
        if has_fault != self.fault.is_some() {
            return Err(remap_snap::SnapError::Corrupt(format!(
                "SPL fault stream presence mismatch (snapshot {has_fault}, fabric {})",
                self.fault.is_some()
            )));
        }
        if let Some(f) = self.fault.as_deref_mut() {
            f.load_state(r)?;
        }
        Ok(())
    }

    fn try_issue_barrier(&mut self, idx: usize, now: u64) -> bool {
        let rb = &self.released[idx];
        let cfg_id = rb.cfg;
        let participants = rb.participants.clone();
        // All participants' heads must be this barrier's entries.
        for &p in &participants {
            match self.inputs[p].head() {
                Some(h) if h.cfg == cfg_id => {}
                _ => return false,
            }
        }
        let func = self.funcs.get(&cfg_id).expect("validated at request");
        let rows = func.rows();
        let part_id = self.cfg.core_partition[participants[0]];
        if self.parts[part_id].next_issue_at > now {
            self.stats.stall_rows += 1;
            return false;
        }
        // Reserve every participant's output slot atomically.
        let mut reserved = Vec::new();
        for &p in &participants {
            if self.outputs[p].reserve() {
                reserved.push(p);
            } else {
                self.stats.stall_output_full += 1;
                // Roll back reservations (cannot issue this cycle).
                for &r in &reserved {
                    // Deliver+pop would corrupt; instead un-reserve by
                    // delivering to a scratch value is wrong. Track reserve
                    // rollback through a dedicated method.
                    self.outputs[r].unreserve();
                }
                return false;
            }
        }
        let entries: Vec<_> = participants
            .iter()
            .map(|&p| self.inputs[p].pop().expect("head checked").entry)
            .collect();
        let result = match func.kind() {
            FunctionKind::Barrier { eval } => eval(&entries),
            FunctionKind::Compute { .. } => unreachable!("barrier release on compute cfg"),
        };
        let ii = self.ii_for(rows);
        let part = &mut self.parts[part_id];
        part.next_issue_at = now + ii;
        part.inflight.push(Inflight {
            done_at: now + rows as u64 + 1,
            result,
            dests: Dests::Many(participants),
            from: usize::MAX,
            cfg: cfg_id,
            barrier: true,
            rows,
        });
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::Dest;

    fn add_fabric() -> Spl {
        let mut spl = Spl::new(SplConfig::paper(4));
        spl.register(
            1,
            SplFunction::compute("add", 4, Dest::SelfCore, |e| {
                (e.u32(0) as u64).wrapping_add(e.u32(4) as u64)
            }),
        );
        spl
    }

    fn run_until_output(spl: &mut Spl, core: usize, max: u64) -> (u64, u64) {
        for t in 1..=max {
            spl.tick(t);
            if let Some(v) = spl.pop_output(core) {
                return (v, t);
            }
        }
        panic!("no output within {max} SPL cycles");
    }

    #[test]
    fn basic_compute_latency() {
        let mut spl = add_fabric();
        spl.stage(0, 0, 4, 30);
        spl.stage(0, 4, 4, 12);
        spl.request(0, 1, 0).unwrap();
        let (v, t) = run_until_output(&mut spl, 0, 100);
        assert_eq!(v, 42);
        // Issued at t=1, rows=4 → done at 1+4+1=6.
        assert_eq!(t, 6);
        assert_eq!(spl.stats().compute_ops, 1);
        assert_eq!(spl.stats().row_activations, 4);
    }

    #[test]
    fn pipelined_ops_have_unit_initiation_interval() {
        let mut spl = add_fabric();
        for i in 0..4u64 {
            spl.stage(0, 0, 4, i);
            spl.stage(0, 4, 4, 100);
            spl.request(0, 1, 0).unwrap();
        }
        // With rows=4 ≤ 24 physical, II = 1: four ops complete on
        // consecutive SPL cycles starting at 6.
        let mut done = Vec::new();
        for t in 1..=40 {
            spl.tick(t);
            while let Some(v) = spl.pop_output(0) {
                done.push((t, v));
            }
        }
        assert_eq!(done.len(), 4);
        assert_eq!(done[0].0, 6);
        assert_eq!(done[3].0, 9, "fully pipelined: one completion per cycle");
        assert_eq!(
            done.iter().map(|d| d.1).collect::<Vec<_>>(),
            vec![100, 101, 102, 103]
        );
    }

    #[test]
    fn virtualized_function_degrades_throughput_not_correctness() {
        let mut spl = Spl::new(SplConfig::paper(1));
        // 48 virtual rows on 24 physical: II = 2.
        spl.register(
            9,
            SplFunction::compute("big", 48, Dest::SelfCore, |e| e.u32(0) as u64),
        );
        for i in 0..3u64 {
            spl.stage(0, 0, 4, i);
            spl.request(0, 9, 0).unwrap();
        }
        let mut done = Vec::new();
        for t in 1..=200 {
            spl.tick(t);
            while let Some(v) = spl.pop_output(0) {
                done.push((t, v));
            }
        }
        assert_eq!(done.len(), 3);
        // First done at 1+48+1 = 50; subsequent issues at t=3, 5 → 52, 54.
        assert_eq!(done[0].0, 50);
        assert_eq!(done[1].0 - done[0].0, 2, "initiation interval of 2");
        assert_eq!(done[2].0 - done[1].0, 2);
    }

    #[test]
    fn partitions_isolate_contention() {
        // Two cores, two partitions: both can issue in the same cycle.
        let mut spl = Spl::new(SplConfig::partitioned(2, 2));
        spl.register(
            1,
            SplFunction::compute("id", 12, Dest::SelfCore, |e| e.u32(0) as u64),
        );
        spl.stage(0, 0, 4, 5);
        spl.request(0, 1, 0).unwrap();
        spl.stage(1, 0, 4, 6);
        spl.request(1, 1, 1).unwrap();
        spl.tick(1);
        // Both issued at t=1 → both complete at t=14.
        let mut got = Vec::new();
        for t in 2..=20 {
            spl.tick(t);
            if let Some(v) = spl.pop_output(0) {
                got.push((0, t, v));
            }
            if let Some(v) = spl.pop_output(1) {
                got.push((1, t, v));
            }
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].1, got[1].1, "parallel partitions complete together");
    }

    #[test]
    fn partitioning_increases_virtualization() {
        // A 24-row function on a 12-row partition has II=2 and still works.
        let mut spl = Spl::new(SplConfig::partitioned(2, 2));
        spl.register(
            1,
            SplFunction::compute("full", 24, Dest::SelfCore, |e| e.u32(0) as u64),
        );
        spl.stage(0, 0, 4, 7);
        spl.request(0, 1, 0).unwrap();
        let (v, t) = run_until_output(&mut spl, 0, 100);
        assert_eq!(v, 7);
        assert_eq!(t, 1 + 24 + 1);
    }

    #[test]
    fn round_robin_shares_fairly() {
        // One partition, 4 cores all requesting constantly: completions
        // should interleave across cores rather than starve anyone.
        let mut spl = add_fabric();
        for c in 0..4 {
            for _ in 0..4 {
                spl.stage(c, 0, 4, c as u64);
                spl.stage(c, 4, 4, 0);
                spl.request(c, 1, c).unwrap();
            }
        }
        let mut per_core = [0usize; 4];
        for t in 1..=60 {
            spl.tick(t);
            for (c, count) in per_core.iter_mut().enumerate() {
                if spl.pop_output(c).is_some() {
                    *count += 1;
                }
            }
        }
        assert_eq!(per_core, [4, 4, 4, 4]);
    }

    #[test]
    fn producer_consumer_routing() {
        let mut spl = add_fabric();
        // Core 0 computes, result routed to core 2's output queue.
        spl.stage(0, 0, 4, 40);
        spl.stage(0, 4, 4, 2);
        spl.request(0, 1, 2).unwrap();
        for t in 1..=10 {
            let events = spl.tick(t);
            for e in events {
                assert_eq!(e.from_core, 0);
                assert_eq!(e.dest_core, 2);
            }
        }
        assert_eq!(spl.output_ready(0), 0);
        assert_eq!(spl.pop_output(2), Some(42));
    }

    #[test]
    fn output_backpressure_blocks_issue() {
        let mut cfg = SplConfig::paper(1);
        cfg.output_capacity = 2;
        let mut spl = Spl::new(cfg);
        spl.register(
            1,
            SplFunction::compute("id", 2, Dest::SelfCore, |e| e.u32(0) as u64),
        );
        for i in 0..4u64 {
            spl.stage(0, 0, 4, i);
            spl.request(0, 1, 0).unwrap();
        }
        for t in 1..=30 {
            spl.tick(t);
        }
        // Only 2 results can be outstanding; the rest wait in the input queue.
        assert_eq!(spl.output_ready(0), 2);
        assert_eq!(spl.input_pending(0), 2);
        assert!(spl.stats().stall_output_full > 0);
        // Draining the queue lets the remaining ops flow.
        assert_eq!(spl.pop_output(0), Some(0));
        assert_eq!(spl.pop_output(0), Some(1));
        for t in 31..=60 {
            spl.tick(t);
        }
        assert_eq!(spl.pop_output(0), Some(2));
        assert_eq!(spl.pop_output(0), Some(3));
    }

    #[test]
    fn barrier_waits_for_release_and_heads() {
        let mut spl = Spl::new(SplConfig::paper(4));
        spl.register(
            2,
            SplFunction::barrier("gmin", 6, |es| {
                es.iter().map(|e| e.u32(0)).min().unwrap_or(0) as u64
            }),
        );
        // Three of four participants arrive.
        for c in 0..3 {
            spl.stage(c, 0, 4, 10 + c as u64);
            spl.request(c, 2, usize::MAX).unwrap();
        }
        for t in 1..=10 {
            spl.tick(t);
        }
        assert_eq!(spl.stats().barrier_ops, 0, "not released yet");
        // Fourth arrives; the system layer releases the barrier.
        spl.stage(3, 0, 4, 3);
        spl.request(3, 2, usize::MAX).unwrap();
        spl.release_barrier(2, vec![0, 1, 2, 3]);
        let mut results = Vec::new();
        for t in 11..=30 {
            spl.tick(t);
            for c in 0..4 {
                if let Some(v) = spl.pop_output(c) {
                    results.push(v);
                }
            }
        }
        assert_eq!(results, vec![3, 3, 3, 3], "global min broadcast to all");
        assert_eq!(spl.stats().barrier_ops, 1);
    }

    #[test]
    fn barrier_behind_compute_waits_for_head() {
        let mut spl = Spl::new(SplConfig::paper(2));
        spl.register(
            1,
            SplFunction::compute("id", 24, Dest::SelfCore, |e| e.u32(0) as u64),
        );
        spl.register(2, SplFunction::barrier("sync", 2, |_| 1));
        // Core 0: compute then barrier; core 1: barrier only.
        spl.stage(0, 0, 4, 9);
        spl.request(0, 1, 0).unwrap();
        spl.stage(0, 0, 4, 0);
        spl.request(0, 2, usize::MAX).unwrap();
        spl.stage(1, 0, 4, 0);
        spl.request(1, 2, usize::MAX).unwrap();
        spl.release_barrier(2, vec![0, 1]);
        // The barrier cannot issue until core 0's compute entry drains.
        spl.tick(1);
        assert_eq!(spl.stats().barrier_ops, 0);
        let mut barrier_done_at = 0;
        for t in 2..=80 {
            spl.tick(t);
            if spl.stats().barrier_ops == 1 && barrier_done_at == 0 {
                barrier_done_at = t;
            }
        }
        assert!(
            barrier_done_at > 2,
            "barrier issued only after compute head popped"
        );
        // The 2-row barrier completes while the 24-row compute op is still
        // in the pipeline: results arrive out of order, barrier first.
        assert_eq!(spl.pop_output(0), Some(1));
        assert_eq!(spl.pop_output(0), Some(9));
    }

    #[test]
    fn unknown_config_rejected() {
        let mut spl = add_fabric();
        assert_eq!(spl.request(0, 99, 0), Err(RequestError::UnknownConfig(99)));
    }

    #[test]
    fn input_queue_full_rejected() {
        let mut cfg = SplConfig::paper(1);
        cfg.input_capacity = 1;
        let mut spl = Spl::new(cfg);
        spl.register(
            1,
            SplFunction::compute("id", 1, Dest::SelfCore, |e| e.u32(0) as u64),
        );
        spl.request(0, 1, 0).unwrap();
        assert_eq!(spl.request(0, 1, 0), Err(RequestError::QueueFull));
    }

    #[test]
    #[should_panic(expected = "divide the row count")]
    fn bad_partitioning_panics() {
        let mut cfg = SplConfig::paper(4);
        cfg.partitions = 3;
        cfg.rows = 23;
        let _ = Spl::new(cfg);
    }

    #[test]
    fn parity_fault_replays_and_preserves_result() {
        use remap_fault::{SiteCfg, PPM_SCALE, SITE_SPL};
        let mut clean = add_fabric();
        clean.stage(0, 0, 4, 20);
        clean.stage(0, 4, 4, 22);
        clean.request(0, 1, 0).unwrap();
        let (v, clean_t) = run_until_output(&mut clean, 0, 100);
        assert_eq!(v, 42);

        let mut spl = add_fabric();
        // Fire exactly on the first completion attempt; the replayed
        // completion (event 1) is outside the window and delivers.
        spl.set_fault(Some(SplFault::new(
            7,
            SITE_SPL,
            SiteCfg::windowed(PPM_SCALE as u32, 0, 1),
            true,
            6,
        )));
        spl.stage(0, 0, 4, 20);
        spl.stage(0, 4, 4, 22);
        spl.request(0, 1, 0).unwrap();
        let (v, t) = run_until_output(&mut spl, 0, 100);
        assert_eq!(v, 42, "parity replay must deliver the correct result");
        assert_eq!(t, clean_t + 6, "replay costs the scrub latency");
        let c = spl.fault_counters();
        assert_eq!(
            (c.injected, c.detected, c.recovered, c.silent),
            (1, 1, 1, 0)
        );
    }

    #[test]
    fn unprotected_fault_silently_flips_one_bit() {
        use remap_fault::{SiteCfg, PPM_SCALE, SITE_SPL};
        let mut spl = add_fabric();
        spl.set_fault(Some(SplFault::new(
            7,
            SITE_SPL,
            SiteCfg::windowed(PPM_SCALE as u32, 0, 1),
            false,
            6,
        )));
        spl.stage(0, 0, 4, 20);
        spl.stage(0, 4, 4, 22);
        spl.request(0, 1, 0).unwrap();
        let (v, _) = run_until_output(&mut spl, 0, 100);
        assert_eq!((v ^ 42).count_ones(), 1, "exactly one flipped bit");
        let c = spl.fault_counters();
        assert_eq!(
            (c.injected, c.detected, c.recovered, c.silent),
            (1, 0, 0, 1)
        );
    }

    #[test]
    fn fault_stream_is_deterministic_across_fabrics() {
        use remap_fault::{SiteCfg, SITE_SPL};
        let run = || {
            let mut spl = add_fabric();
            spl.set_fault(Some(SplFault::new(
                123,
                SITE_SPL,
                SiteCfg::rate(400_000),
                false,
                6,
            )));
            let mut outs = Vec::new();
            for i in 0..32u64 {
                spl.stage(0, 0, 4, i);
                spl.stage(0, 4, 4, 1000);
                spl.request(0, 1, 0).unwrap();
                for t in (i * 50 + 1)..=(i * 50 + 50) {
                    spl.tick(t);
                    if let Some(v) = spl.pop_output(0) {
                        outs.push(v);
                    }
                }
            }
            (outs, spl.fault_counters())
        };
        let (a, ca) = run();
        let (b, cb) = run();
        assert_eq!(a, b);
        assert_eq!(ca, cb);
        assert!(ca.injected > 0, "40% rate over 32 ops should fire");
    }
}

//! Structural model of an SPL row and cell (Figure 2(c) of the paper).
//!
//! These types capture the *hardware inventory* of the fabric — what a row
//! is made of — which the area and power models consume. The functional
//! semantics of a configured fabric live in [`SplFunction`](crate::SplFunction)
//! closures; this mirrors how the paper derives area/power from the row
//! design while simulating functions at a behavioral level.

/// One 8-bit SPL cell.
///
/// Per Figure 2(c), a cell contains a main 4-input LUT, a group of 2-LUTs
/// feeding a fast carry tree, two barrel shifters for operand alignment, and
/// flip-flops latching the result. The same operation is applied to all
/// 8 bits of a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellModel {
    /// Data width of the cell in bits.
    pub bits: u32,
    /// Number of 4-input LUTs (the main LUT).
    pub lut4s: u32,
    /// Number of 2-input LUTs feeding the carry tree.
    pub lut2s: u32,
    /// Number of barrel shifters.
    pub barrel_shifters: u32,
    /// Result flip-flops.
    pub flops: u32,
}

impl Default for CellModel {
    fn default() -> Self {
        CellModel {
            bits: 8,
            lut4s: 8,
            lut2s: 8,
            barrel_shifters: 2,
            flops: 8,
        }
    }
}

/// One SPL row: 16 cells plus the inter-row interconnection network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowModel {
    /// Cells per row (16 in the paper, for a 16×8-bit row).
    pub cells: u32,
    /// The cell design.
    pub cell: CellModel,
}

impl Default for RowModel {
    fn default() -> Self {
        RowModel {
            cells: 16,
            cell: CellModel::default(),
        }
    }
}

impl RowModel {
    /// Total data width of the row in bits (128 for the paper's design).
    pub fn width_bits(&self) -> u32 {
        self.cells * self.cell.bits
    }

    /// Total data width in bytes (the input-queue entry size).
    pub fn width_bytes(&self) -> u32 {
        self.width_bits() / 8
    }

    /// Total 4-LUT count in the row, a rough complexity proxy used by the
    /// area model.
    pub fn lut4s(&self) -> u32 {
        self.cells * self.cell.lut4s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_row_is_16x8() {
        let r = RowModel::default();
        assert_eq!(r.width_bits(), 128);
        assert_eq!(r.width_bytes(), 16);
        assert_eq!(r.lut4s(), 128);
    }
}

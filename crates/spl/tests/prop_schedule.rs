#![allow(clippy::needless_range_loop)] // per-core indices are the subject here

//! Property tests for the SPL fabric scheduler: conservation, per-core FIFO
//! ordering, initiation-interval enforcement, and back-pressure safety
//! under random request streams.

use proptest::prelude::*;
use remap_spl::{Dest, Spl, SplConfig, SplFunction};

#[derive(Debug, Clone)]
struct Req {
    core: usize,
    value: u32,
    big: bool, // use the virtualized (36-row) function
}

fn arb_req(cores: usize) -> impl Strategy<Value = Req> {
    (0..cores, any::<u32>(), any::<bool>()).prop_map(|(core, value, big)| Req { core, value, big })
}

fn fabric(cores: usize, partitions: usize) -> Spl {
    let mut cfg = SplConfig::partitioned(cores, partitions);
    cfg.rows = 24;
    let mut spl = Spl::new(cfg);
    spl.register(
        1,
        SplFunction::compute("small", 6, Dest::SelfCore, |e| e.u32(0) as u64),
    );
    spl.register(
        2,
        SplFunction::compute("big", 36, Dest::SelfCore, |e| e.u32(0) as u64 ^ 0xffff_ffff),
    );
    spl
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every accepted request eventually produces exactly one result, in
    /// per-core FIFO order, with the correct value — under arbitrary
    /// interleavings, both functions, and any partition count.
    #[test]
    fn conservation_and_fifo(
        reqs in proptest::collection::vec(arb_req(4), 1..80),
        partitions in prop_oneof![Just(1usize), Just(2), Just(4)],
    ) {
        let mut spl = fabric(4, partitions);
        let mut expected: Vec<Vec<u64>> = vec![Vec::new(); 4];
        let mut pending = reqs.clone();
        let mut got: Vec<Vec<u64>> = vec![Vec::new(); 4];
        let mut t = 0u64;
        let mut accepted = 0usize;
        let total = reqs.len();
        while got.iter().map(|g| g.len()).sum::<usize>() < total {
            t += 1;
            prop_assert!(t < 100_000, "scheduler must drain all requests");
            // Try to submit the next pending request each cycle.
            if let Some(r) = pending.first().cloned() {
                spl.stage(r.core, 0, 4, r.value as u64);
                let cfg = if r.big { 2 } else { 1 };
                if spl.request(r.core, cfg, r.core).is_ok() {
                    let v = if r.big {
                        (r.value as u64) ^ 0xffff_ffff
                    } else {
                        r.value as u64
                    };
                    expected[r.core].push(v);
                    pending.remove(0);
                    accepted += 1;
                }
            }
            spl.tick(t);
            for c in 0..4 {
                while let Some(v) = spl.pop_output(c) {
                    got[c].push(v);
                }
            }
        }
        prop_assert_eq!(accepted, total);
        for c in 0..4 {
            // Same-core completion order may only deviate from issue order
            // when a short op overtakes a longer in-flight one; with queue
            // pops in order and a single partition per core, outputs of the
            // *same function* must stay FIFO. Verify multiset equality and
            // FIFO order of the same-function subsequences.
            let mut exp_sorted = expected[c].clone();
            let mut got_sorted = got[c].clone();
            exp_sorted.sort_unstable();
            got_sorted.sort_unstable();
            prop_assert_eq!(&exp_sorted, &got_sorted, "core {} multiset", c);
            // Full FIFO order is only guaranteed when a core uses a single
            // function (mixed row counts legitimately complete out of
            // order while queue pops remain in order).
            let all_same: bool = {
                let bigs: Vec<bool> = reqs.iter().filter(|r| r.core == c).map(|r| r.big).collect();
                bigs.windows(2).all(|w| w[0] == w[1])
            };
            if all_same {
                prop_assert_eq!(&expected[c], &got[c], "core {} FIFO order", c);
            }
        }
        let stats = spl.stats();
        prop_assert_eq!(stats.compute_ops as usize, total);
        prop_assert_eq!(stats.results_delivered as usize, total);
    }

    /// The initiation interval is enforced: with one core hammering the
    /// virtualized 36-row function on 24 rows (II = 2), completions are at
    /// least 2 SPL cycles apart.
    #[test]
    fn initiation_interval_enforced(n in 2usize..=8) { // input queue holds 8
        let mut spl = fabric(1, 1);
        for i in 0..n {
            spl.stage(0, 0, 4, i as u64);
            spl.request(0, 2, 0).unwrap();
        }
        let mut completions = Vec::new();
        for t in 1..10_000 {
            spl.tick(t);
            while spl.pop_output(0).is_some() {
                completions.push(t);
            }
            if completions.len() == n.min(8) {
                break;
            }
        }
        // Completions must be spaced by the initiation interval (II = 2).
        for w in completions.windows(2) {
            prop_assert!(w[1] - w[0] >= 2, "II violated: {:?}", completions);
        }
    }
}

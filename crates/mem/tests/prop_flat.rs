//! Property tests for the `FlatMem` word-granular fast paths.
//!
//! The single-page `read_u32`/`write_u32`/`read_u64`/`write_u64` fast cases
//! and the page-chunked `read_bytes`/`write_bytes` must be observationally
//! identical to the byte-at-a-time reference accessors (`read_u8` /
//! `write_u8`), including across page-boundary straddles. The strategy
//! deliberately clusters addresses around multiples of the 4 KiB page size
//! so straddling accesses are common, and interleaves sized reads/writes so
//! fast-path writes are read back through the reference path and vice
//! versa.

use proptest::prelude::*;
use remap_mem::FlatMem;
use std::collections::HashMap;

/// Byte-at-a-time reference model: a sparse map with zero-fill semantics,
/// exactly the contract of the paged arena.
#[derive(Default)]
struct RefMem {
    bytes: HashMap<u64, u8>,
}

impl RefMem {
    fn read(&self, addr: u64) -> u8 {
        self.bytes.get(&addr).copied().unwrap_or(0)
    }

    fn write(&mut self, addr: u64, v: u8) {
        self.bytes.insert(addr, v);
    }

    fn read_wide(&self, addr: u64, size: u64) -> u64 {
        let mut v = 0u64;
        for i in 0..size {
            v |= (self.read(addr + i) as u64) << (8 * i);
        }
        v
    }

    fn write_wide(&mut self, addr: u64, size: u64, v: u64) {
        for i in 0..size {
            self.write(addr + i, (v >> (8 * i)) as u8);
        }
    }
}

#[derive(Debug, Clone)]
enum Op {
    W8(u64, u8),
    W32(u64, u32),
    W64(u64, u64),
    R8(u64),
    R32(u64),
    R64(u64),
    WBytes(u64, Vec<u8>),
    RBytes(u64, usize),
    FillWords(u64, i32, usize),
}

/// Addresses over a handful of pages, biased toward page boundaries so
/// straddling u32/u64/byte-slice accesses occur in most cases.
fn arb_addr() -> impl Strategy<Value = u64> {
    let pages = 0u64..6;
    prop_oneof![
        (pages.clone(), 0u64..4096).prop_map(|(p, off)| p * 4096 + off),
        // Within 8 bytes of a page boundary: every wide access straddles.
        (1u64..6, 0u64..16).prop_map(|(p, d)| p * 4096 - 8 + d),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (arb_addr(), any::<u8>()).prop_map(|(a, v)| Op::W8(a, v)),
        (arb_addr(), any::<u32>()).prop_map(|(a, v)| Op::W32(a, v)),
        (arb_addr(), any::<u64>()).prop_map(|(a, v)| Op::W64(a, v)),
        arb_addr().prop_map(Op::R8),
        arb_addr().prop_map(Op::R32),
        arb_addr().prop_map(Op::R64),
        (arb_addr(), proptest::collection::vec(any::<u8>(), 1..80))
            .prop_map(|(a, v)| Op::WBytes(a, v)),
        (arb_addr(), 1usize..80).prop_map(|(a, n)| Op::RBytes(a, n)),
        (arb_addr(), any::<i32>(), 1usize..40).prop_map(|(a, v, n)| Op::FillWords(a, v, n)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every fast-path accessor agrees with the byte-at-a-time reference
    /// over arbitrary interleavings, including page straddles.
    #[test]
    fn flatmem_matches_byte_reference(ops in proptest::collection::vec(arb_op(), 1..120)) {
        let mut mem = FlatMem::new();
        let mut model = RefMem::default();
        for op in &ops {
            match *op {
                Op::W8(a, v) => {
                    mem.write_u8(a, v);
                    model.write(a, v);
                }
                Op::W32(a, v) => {
                    mem.write_u32(a, v);
                    model.write_wide(a, 4, v as u64);
                }
                Op::W64(a, v) => {
                    mem.write_u64(a, v);
                    model.write_wide(a, 8, v);
                }
                Op::R8(a) => prop_assert_eq!(mem.read_u8(a), model.read(a)),
                Op::R32(a) => {
                    prop_assert_eq!(mem.read_u32(a) as u64, model.read_wide(a, 4))
                }
                Op::R64(a) => prop_assert_eq!(mem.read_u64(a), model.read_wide(a, 8)),
                Op::WBytes(a, ref bytes) => {
                    mem.write_bytes(a, bytes);
                    for (i, &b) in bytes.iter().enumerate() {
                        model.write(a + i as u64, b);
                    }
                }
                Op::RBytes(a, n) => {
                    let mut buf = vec![0u8; n];
                    mem.read_bytes(a, &mut buf);
                    for (i, &b) in buf.iter().enumerate() {
                        prop_assert_eq!(b, model.read(a + i as u64));
                    }
                }
                Op::FillWords(a, v, n) => {
                    mem.fill_words(a, v, n);
                    for w in 0..n as u64 {
                        model.write_wide(a + 4 * w, 4, v as u32 as u64);
                    }
                }
            }
        }
        // Final sweep: the full touched region read back both ways.
        for page in 0..6u64 {
            for off in (0..4096u64).step_by(97) {
                let a = page * 4096 + off;
                prop_assert_eq!(mem.read_u8(a), model.read(a));
            }
        }
    }
}

//! Property tests for the banked coherence directory. The directory is a
//! probe *filter* layered over the same functional MESI walk as the
//! broadcast snoop — sharer masks decide who gets probed, never what the
//! protocol does — so a directory-routed hierarchy and the broadcast
//! reference must commit identical architectural values, identical cache
//! hit/miss counters, identical bus traffic, and identical MESI states on
//! any access stream. These tests pin that contract under adversarial
//! random multi-core streams, and check the directory's own inclusion
//! invariant (sharer sets exactly mirror L2 residency).

use proptest::prelude::*;
use remap_mem::{Hierarchy, HierarchyConfig, Mesi, PC_NONE};

#[derive(Debug, Clone)]
enum Op {
    Load {
        core: usize,
        slot: usize,
        wide: bool,
    },
    Store {
        core: usize,
        slot: usize,
        val: u32,
    },
    Amo {
        core: usize,
        slot: usize,
        delta: i32,
    },
    Fetch {
        core: usize,
        slot: usize,
    },
}

fn arb_op(cores: usize, slots: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..cores, 0..slots, any::<bool>()).prop_map(|(core, slot, wide)| Op::Load {
            core,
            slot,
            wide
        }),
        (0..cores, 0..slots, any::<u32>()).prop_map(|(core, slot, val)| Op::Store {
            core,
            slot,
            val
        }),
        (0..cores, 0..slots, -50i32..50).prop_map(|(core, slot, delta)| Op::Amo {
            core,
            slot,
            delta
        }),
        (0..cores, 0..slots).prop_map(|(core, slot)| Op::Fetch { core, slot }),
    ]
}

/// Slot stride 12 within 32-byte lines: neighbouring slots share lines, so
/// streams mix same-line sharing, upgrades, and cross-core transfers.
fn slot_addr(slot: usize) -> u64 {
    0x2000 + (slot as u64) * 12
}

/// Every line the slot space can touch (for state comparison).
fn slot_lines(slots: usize) -> Vec<u64> {
    let hi = slot_addr(slots - 1) + 8;
    (0x2000..=hi).step_by(32).map(|a| a & !31).collect()
}

/// Drives one op stream, advancing a local clock by each returned latency
/// (directory queueing and grid hops shift timing, so each hierarchy keeps
/// its own timeline). Returns every architectural value observed.
fn drive(h: &mut Hierarchy, ops: &[Op]) -> Vec<u64> {
    let mut t = 0u64;
    let mut observed = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Load { core, slot, wide } => {
                let size = if wide { 8 } else { 4 };
                let (v, lat) = h.load(core, slot_addr(slot), size, i as u32, t);
                observed.push(v);
                t += lat as u64;
            }
            Op::Store { core, slot, val } => {
                t += h.store(core, slot_addr(slot), 4, val as u64, t) as u64;
            }
            Op::Amo { core, slot, delta } => {
                let (old, lat) = h.amo_add(core, slot_addr(slot), delta as i64, t);
                observed.push(old as u64);
                t += lat as u64;
            }
            Op::Fetch { core, slot } => {
                t += h.inst_fetch(core, (slot as u64) * 4, t) as u64;
            }
        }
    }
    observed
}

/// Full architectural comparison of a directory-routed hierarchy against
/// the broadcast reference on one op stream.
fn assert_dir_matches_broadcast(
    cores: usize,
    slots: usize,
    mlp: bool,
    ops: &[Op],
) -> Result<(), TestCaseError> {
    let mut dir = Hierarchy::new(cores, HierarchyConfig::default());
    dir.set_mlp(mlp);
    dir.set_dir(true);
    let mut bcast = Hierarchy::new(cores, HierarchyConfig::default());
    bcast.set_mlp(mlp);
    bcast.set_dir(false);

    let seen_d = drive(&mut dir, ops);
    let seen_b = drive(&mut bcast, ops);
    prop_assert_eq!(seen_d, seen_b, "architectural values diverged");
    for c in 0..cores {
        prop_assert_eq!(
            dir.cache_stats(c),
            bcast.cache_stats(c),
            "core {} cache stats diverged",
            c
        );
    }
    prop_assert_eq!(
        dir.bus_stats(),
        bcast.bus_stats(),
        "bus traffic diverged (the filter must not change transactions)"
    );
    // MESI states must agree line by line — the sharer mask routed exactly
    // the probes the broadcast walk would have made effective.
    let lines = slot_lines(slots);
    for &line in &lines {
        for c in 0..cores {
            prop_assert_eq!(
                dir.probe_states(c, line),
                bcast.probe_states(c, line),
                "core {} line {:#x} MESI state diverged",
                c,
                line
            );
        }
    }
    dir.check_mesi_invariants(&lines)
        .map_err(TestCaseError::fail)?;
    dir.check_directory_residency()
        .map_err(TestCaseError::fail)?;
    // Probe accounting must tile the broadcast walk: every full-miss snoop
    // and every upgrade invalidation splits its n-1 remote cores into
    // probed + avoided, nothing else.
    let s = dir.dir_stats();
    let walks = dir.bus_stats().snoops + dir.bus_stats().upgrades;
    prop_assert_eq!(
        s.probes_sent + s.probes_avoided,
        walks * (cores as u64 - 1),
        "probe accounting does not tile the broadcast walk"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Directory ≡ broadcast on the paper's 4-core cluster, with the MLP
    /// machinery also active (the realistic default configuration).
    #[test]
    fn directory_is_probe_filter_only_4_cores(
        ops in proptest::collection::vec(arb_op(4, 24), 1..250)
    ) {
        assert_dir_matches_broadcast(4, 24, true, &ops)?;
    }

    /// Directory ≡ broadcast on a 36-core (3x3-cluster) grid with blocking
    /// latencies, isolating the directory from the MSHR machinery. Grid
    /// hops shift timing but must not touch the functional walk.
    #[test]
    fn directory_is_probe_filter_only_36_cores(
        ops in proptest::collection::vec(arb_op(36, 16), 1..200)
    ) {
        assert_dir_matches_broadcast(36, 16, false, &ops)?;
    }

    /// Flipping the directory on mid-stream reseeds the sharer sets from
    /// live L2 residency, so the remainder of the stream still matches a
    /// broadcast run of the whole stream.
    #[test]
    fn mid_run_enable_reseeds_exactly(
        ops_a in proptest::collection::vec(arb_op(4, 24), 1..100),
        ops_b in proptest::collection::vec(arb_op(4, 24), 1..100)
    ) {
        let mut dir = Hierarchy::new(4, HierarchyConfig::default());
        dir.set_mlp(false);
        dir.set_dir(false);
        let mut bcast = Hierarchy::new(4, HierarchyConfig::default());
        bcast.set_mlp(false);
        bcast.set_dir(false);

        let mut seen_d = drive(&mut dir, &ops_a);
        dir.set_dir(true);
        seen_d.extend(drive(&mut dir, &ops_b));
        let mut seen_b = drive(&mut bcast, &ops_a);
        seen_b.extend(drive(&mut bcast, &ops_b));

        prop_assert_eq!(seen_d, seen_b, "architectural values diverged");
        for c in 0..4 {
            prop_assert_eq!(dir.cache_stats(c), bcast.cache_stats(c));
        }
        prop_assert_eq!(dir.bus_stats(), bcast.bus_stats());
        dir.check_directory_residency().map_err(TestCaseError::fail)?;
    }

    /// The early-exit in the broadcast walk (stop at the dirty owner) is
    /// architecturally invisible: MESI guarantees a Modified copy is the
    /// only copy, so the skipped tail of the walk was all no-ops. Pinned
    /// here by checking a dirty c2c transfer leaves every third-party core
    /// Invalid.
    #[test]
    fn dirty_supplier_early_exit_is_invisible(owner in 0usize..4, hop in 1usize..4) {
        let reader = (owner + hop) % 4;
        let mut h = Hierarchy::new(4, HierarchyConfig::default());
        h.set_mlp(false);
        h.set_dir(false);
        let t = h.store(owner, 0x3000, 4, 99, 0) as u64;
        let (v, _) = h.load(reader, 0x3000, 4, PC_NONE, t);
        prop_assert_eq!(v, 99);
        for c in 0..4 {
            let want = if c == owner || c == reader {
                Mesi::Shared
            } else {
                Mesi::Invalid
            };
            prop_assert_eq!(h.probe_states(c, 0x3000).1, want, "core {} L2", c);
        }
    }
}

//! Property tests: MESI global invariants hold and functional data is always
//! coherent under arbitrary interleavings of loads, stores and atomics from
//! multiple cores.

use proptest::prelude::*;
use remap_mem::{Hierarchy, HierarchyConfig, PC_NONE};
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Load {
        core: usize,
        slot: usize,
    },
    Store {
        core: usize,
        slot: usize,
        val: u32,
    },
    Amo {
        core: usize,
        slot: usize,
        delta: i32,
    },
}

fn arb_op(cores: usize, slots: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..cores, 0..slots).prop_map(|(core, slot)| Op::Load { core, slot }),
        (0..cores, 0..slots, any::<u32>()).prop_map(|(core, slot, val)| Op::Store {
            core,
            slot,
            val
        }),
        (0..cores, 0..slots, -100i32..100).prop_map(|(core, slot, delta)| Op::Amo {
            core,
            slot,
            delta
        }),
    ]
}

fn slot_addr(slot: usize) -> u64 {
    // Spread slots over distinct lines and some shared lines.
    0x1000 + (slot as u64) * 20
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any sequence of accesses from 4 cores:
    /// 1. every load/amo observes exactly the value a sequential reference
    ///    model predicts (the bus is atomic, so the op sequence is the
    ///    total order), and
    /// 2. the MESI single-writer invariant holds for every touched line.
    #[test]
    fn coherent_and_single_writer(ops in proptest::collection::vec(arb_op(4, 8), 1..200)) {
        let mut h = Hierarchy::new(4, HierarchyConfig::default());
        let mut reference: HashMap<u64, u32> = HashMap::new();
        let mut t = 0u64;
        for op in &ops {
            match *op {
                Op::Load { core, slot } => {
                    let a = slot_addr(slot);
                    let (v, lat) = h.load(core, a, 4, PC_NONE, t);
                    t += lat as u64;
                    prop_assert!(lat >= 2);
                    prop_assert_eq!(v as u32, reference.get(&a).copied().unwrap_or(0));
                }
                Op::Store { core, slot, val } => {
                    let a = slot_addr(slot);
                    t += h.store(core, a, 4, val as u64, t) as u64;
                    reference.insert(a, val);
                }
                Op::Amo { core, slot, delta } => {
                    let a = slot_addr(slot);
                    let (old, lat) = h.amo_add(core, a, delta as i64, t);
                    t += lat as u64;
                    let expect = reference.get(&a).copied().unwrap_or(0);
                    prop_assert_eq!(old as u32, expect);
                    reference.insert(a, (expect as i32).wrapping_add(delta) as u32);
                }
            }
        }
        let addrs: Vec<u64> = (0..8).map(slot_addr).collect();
        h.check_mesi_invariants(&addrs).map_err(TestCaseError::fail)?;
    }

    /// Latency monotonicity: a repeated load from the same core is never
    /// slower than its first (cold) access.
    #[test]
    fn repeat_access_not_slower(slot in 0usize..8) {
        let mut h = Hierarchy::new(2, HierarchyConfig::default());
        let a = slot_addr(slot);
        let (_, first) = h.load(0, a, 4, PC_NONE, 0);
        let (_, second) = h.load(0, a, 4, PC_NONE, first as u64);
        prop_assert!(second <= first);
    }
}

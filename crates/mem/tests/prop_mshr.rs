//! Property tests for the non-blocking (MSHR + prefetch + memory-controller)
//! hierarchy. The MLP machinery is timing-only by construction — the
//! functional MESI walk runs identically with it on or off — and these
//! tests pin that contract under adversarial random streams: line-straddling
//! wide accesses, same-line secondary misses, and multi-core sharing.

use proptest::prelude::*;
use remap_mem::{Hierarchy, HierarchyConfig, PC_NONE};

#[derive(Debug, Clone)]
enum Op {
    /// `wide` loads read 8 bytes, which at some slot offsets straddles a
    /// 32-byte line boundary (two fills from one access).
    Load {
        core: usize,
        slot: usize,
        wide: bool,
    },
    Store {
        core: usize,
        slot: usize,
        val: u32,
    },
    Amo {
        core: usize,
        slot: usize,
        delta: i32,
    },
    Fetch {
        core: usize,
        slot: usize,
    },
}

fn arb_op(cores: usize, slots: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..cores, 0..slots, any::<bool>()).prop_map(|(core, slot, wide)| Op::Load {
            core,
            slot,
            wide
        }),
        (0..cores, 0..slots, any::<u32>()).prop_map(|(core, slot, val)| Op::Store {
            core,
            slot,
            val
        }),
        (0..cores, 0..slots, -50i32..50).prop_map(|(core, slot, delta)| Op::Amo {
            core,
            slot,
            delta
        }),
        (0..cores, 0..slots).prop_map(|(core, slot)| Op::Fetch { core, slot }),
    ]
}

/// Slot stride 12 lands offsets 0, 12, 24, 4, 16, 28, ... within a 32-byte
/// line: neighbouring slots share lines (secondary misses merge with the
/// first miss's MSHR) and a wide load at offset 28 straddles the boundary.
fn slot_addr(slot: usize) -> u64 {
    0x2000 + (slot as u64) * 12
}

/// Drives one op stream through a hierarchy, advancing its own local clock
/// by each returned latency (the two models disagree on latency, so each
/// keeps its own timeline). Returns every architectural value observed.
fn drive(h: &mut Hierarchy, ops: &[Op]) -> Vec<u64> {
    let mut t = 0u64;
    let mut observed = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Load { core, slot, wide } => {
                let size = if wide { 8 } else { 4 };
                let (v, lat) = h.load(core, slot_addr(slot), size, i as u32, t);
                observed.push(v);
                t += lat as u64;
            }
            Op::Store { core, slot, val } => {
                t += h.store(core, slot_addr(slot), 4, val as u64, t) as u64;
            }
            Op::Amo { core, slot, delta } => {
                let (old, lat) = h.amo_add(core, slot_addr(slot), delta as i64, t);
                observed.push(old as u64);
                t += lat as u64;
            }
            Op::Fetch { core, slot } => {
                t += h.inst_fetch(core, (slot as u64) * 4, t) as u64;
            }
        }
    }
    observed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The non-blocking hierarchy and the blocking reference commit
    /// identical architectural values, identical cache hit/miss counters,
    /// and identical coherence-bus traffic on any access stream: MSHRs,
    /// prefetchers, and the memory controller shape latencies only.
    #[test]
    fn mlp_is_timing_only(ops in proptest::collection::vec(arb_op(4, 24), 1..250)) {
        let mut nonblocking = Hierarchy::new(4, HierarchyConfig::default());
        nonblocking.set_mlp(true);
        let mut blocking = Hierarchy::new(4, HierarchyConfig::default());
        blocking.set_mlp(false);

        let seen_nb = drive(&mut nonblocking, &ops);
        let seen_b = drive(&mut blocking, &ops);
        prop_assert_eq!(seen_nb, seen_b, "architectural values diverged");
        for c in 0..4 {
            prop_assert_eq!(
                nonblocking.cache_stats(c),
                blocking.cache_stats(c),
                "core {} cache stats diverged",
                c
            );
        }
        prop_assert_eq!(
            nonblocking.bus_stats(),
            blocking.bus_stats(),
            "bus traffic diverged (prefetches must not be counted)"
        );
    }

    /// With MLP disabled the hierarchy reproduces the blocking model's
    /// canonical latency table exactly, regardless of the caller's clock:
    /// cold DRAM miss 212, L1 hit 2, L2 hit 12, cache-to-cache 32.
    #[test]
    fn no_mlp_reproduces_blocking_latencies(t0 in 0u64..1_000_000) {
        let mut h = Hierarchy::new(2, HierarchyConfig::default());
        h.set_mlp(false);
        let (_, cold) = h.load(0, 0x8000, 4, PC_NONE, t0);
        prop_assert_eq!(cold, 212, "cold DRAM miss");
        let (_, hit) = h.load(0, 0x8000, 4, PC_NONE, t0 + 300);
        prop_assert_eq!(hit, 2, "L1 hit");
        // Evict the line from the tiny L1 (2-way, 128 sets) but not the L2.
        let set_stride = 128 * 32;
        for w in 1..=2u64 {
            h.load(0, 0x8000 + w * set_stride, 4, PC_NONE, t0 + 400);
        }
        let (_, l2) = h.load(0, 0x8000, 4, PC_NONE, t0 + 900);
        prop_assert_eq!(l2, 12, "L2 hit");
        h.store(0, 0x9000, 4, 7, t0 + 1000);
        let (_, c2c) = h.load(1, 0x9000, 4, PC_NONE, t0 + 1300);
        prop_assert_eq!(c2c, 32, "cache-to-cache transfer");
    }
}

//! Property test: the data-oriented `Cache` with MRU-way prediction is
//! observationally identical to a plain linear-scan reference model.
//!
//! The reference reimplements the documented policy with none of the
//! layout tricks: per-line structs, no way prediction, first-match linear
//! lookup. Valid tags are unique within a set, so prediction must be a
//! pure search shortcut — every operation's return value, the hit/miss/
//! writeback/invalidation counters, and the final resident set must match
//! over arbitrary operation sequences and geometries.

use proptest::prelude::*;
use remap_mem::{Cache, CacheConfig, Mesi};

/// Linear-scan reference cache: same policy, naive implementation.
struct RefCache {
    ways: usize,
    sets: usize,
    line_shift: u32,
    tag_shift: u32,
    tags: Vec<u64>,
    states: Vec<Mesi>,
    lru: Vec<u64>,
    tick: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
    invalidations: u64,
}

impl RefCache {
    fn new(cfg: CacheConfig) -> RefCache {
        let sets = cfg.sets();
        let line_shift = cfg.line_bytes.trailing_zeros();
        RefCache {
            ways: cfg.ways,
            sets,
            line_shift,
            tag_shift: line_shift + sets.trailing_zeros(),
            tags: vec![0; sets * cfg.ways],
            states: vec![Mesi::Invalid; sets * cfg.ways],
            lru: vec![0; sets * cfg.ways],
            tick: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
            invalidations: 0,
        }
    }

    fn set_index(&self, addr: u64) -> usize {
        ((addr >> self.line_shift) as usize) & (self.sets - 1)
    }

    fn tag(&self, addr: u64) -> u64 {
        addr >> self.tag_shift
    }

    /// First-match linear scan — no prediction.
    fn find(&self, si: usize, tag: u64) -> Option<usize> {
        let base = si * self.ways;
        (0..self.ways)
            .find(|&w| self.states[base + w] != Mesi::Invalid && self.tags[base + w] == tag)
    }

    fn probe(&self, addr: u64) -> Mesi {
        let si = self.set_index(addr);
        match self.find(si, self.tag(addr)) {
            Some(w) => self.states[si * self.ways + w],
            None => Mesi::Invalid,
        }
    }

    fn access(&mut self, addr: u64) -> Option<Mesi> {
        self.tick += 1;
        let si = self.set_index(addr);
        match self.find(si, self.tag(addr)) {
            Some(w) => {
                let i = si * self.ways + w;
                self.lru[i] = self.tick;
                self.hits += 1;
                Some(self.states[i])
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn set_state(&mut self, addr: u64, state: Mesi) {
        let si = self.set_index(addr);
        if let Some(w) = self.find(si, self.tag(addr)) {
            self.states[si * self.ways + w] = state;
        }
    }

    fn invalidate(&mut self, addr: u64) -> Mesi {
        let si = self.set_index(addr);
        if let Some(w) = self.find(si, self.tag(addr)) {
            let i = si * self.ways + w;
            let prev = self.states[i];
            self.tags[i] = 0;
            self.states[i] = Mesi::Invalid;
            self.lru[i] = 0;
            self.invalidations += 1;
            if prev == Mesi::Modified {
                self.writebacks += 1;
            }
            prev
        } else {
            Mesi::Invalid
        }
    }

    fn insert(&mut self, addr: u64, state: Mesi) -> Option<(u64, Mesi)> {
        self.tick += 1;
        let si = self.set_index(addr);
        let tag = self.tag(addr);
        let base = si * self.ways;
        if let Some(w) = self.find(si, tag) {
            self.states[base + w] = state;
            self.lru[base + w] = self.tick;
            return None;
        }
        let mut evicted = None;
        let slot = match (0..self.ways).find(|&w| self.states[base + w] == Mesi::Invalid) {
            Some(w) => w,
            None => {
                let mut w = 0;
                for cand in 1..self.ways {
                    if self.lru[base + cand] < self.lru[base + w] {
                        w = cand;
                    }
                }
                let victim_state = self.states[base + w];
                if victim_state == Mesi::Modified {
                    self.writebacks += 1;
                }
                let victim_base =
                    (self.tags[base + w] << self.tag_shift) | ((si as u64) << self.line_shift);
                evicted = Some((victim_base, victim_state));
                w
            }
        };
        self.tags[base + slot] = tag;
        self.states[base + slot] = state;
        self.lru[base + slot] = self.tick;
        evicted
    }

    fn resident_lines(&self) -> usize {
        self.states.iter().filter(|&&s| s != Mesi::Invalid).count()
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Access(u64),
    Insert(u64, Mesi),
    Invalidate(u64),
    SetState(u64, Mesi),
    Probe(u64),
}

fn arb_state() -> impl Strategy<Value = Mesi> {
    prop_oneof![
        Just(Mesi::Modified),
        Just(Mesi::Exclusive),
        Just(Mesi::Shared),
    ]
}

/// Addresses spanning `tags` distinct tags per set so conflict evictions
/// are common, with in-line byte offsets so lookups exercise masking.
fn arb_addr(sets: u64, tags: u64) -> impl Strategy<Value = u64> {
    (0..tags * sets, 0u64..16).prop_map(|(line, off)| line * 16 + off)
}

fn arb_op(sets: u64, tags: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        arb_addr(sets, tags).prop_map(Op::Access),
        (arb_addr(sets, tags), arb_state()).prop_map(|(a, s)| Op::Insert(a, s)),
        arb_addr(sets, tags).prop_map(Op::Invalidate),
        (arb_addr(sets, tags), arb_state()).prop_map(|(a, s)| Op::SetState(a, s)),
        arb_addr(sets, tags).prop_map(Op::Probe),
    ]
}

/// Geometries small enough that eviction and conflict paths dominate:
/// (sets, ways) over 16-byte lines.
fn arb_geometry() -> impl Strategy<Value = (usize, usize)> {
    prop_oneof![
        Just((2usize, 1usize)),
        Just((2, 2)),
        Just((4, 2)),
        Just((4, 4)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Identical hit/miss/eviction/invalidate sequences and final stats
    /// between the predicted and linear-scan implementations.
    #[test]
    fn cache_matches_linear_scan_reference(
        geom in arb_geometry(),
        // Addresses generated for the largest geometry (4 sets); smaller
        // set counts alias the extra lines, which only adds conflicts.
        ops in proptest::collection::vec(arb_op(4, 6), 1..300),
    ) {
        let (sets, ways) = geom;
        let cfg = CacheConfig {
            size_bytes: sets * ways * 16,
            ways,
            line_bytes: 16,
            hit_latency: 1,
        };
        let mut cache = Cache::new(cfg);
        let mut model = RefCache::new(cfg);
        for op in &ops {
            match *op {
                Op::Access(a) => prop_assert_eq!(cache.access(a), model.access(a)),
                Op::Insert(a, s) => prop_assert_eq!(cache.insert(a, s), model.insert(a, s)),
                Op::Invalidate(a) => {
                    prop_assert_eq!(cache.invalidate(a), model.invalidate(a))
                }
                Op::SetState(a, s) => {
                    cache.set_state(a, s);
                    model.set_state(a, s);
                }
                Op::Probe(a) => prop_assert_eq!(cache.probe(a), model.probe(a)),
            }
        }
        let st = cache.stats();
        prop_assert_eq!(st.hits, model.hits);
        prop_assert_eq!(st.misses, model.misses);
        prop_assert_eq!(st.writebacks, model.writebacks);
        prop_assert_eq!(st.invalidations, model.invalidations);
        prop_assert_eq!(cache.resident_lines(), model.resident_lines());
        // Every line resident in one is resident with the same state in the
        // other (probe is side-effect-free).
        for line in 0..4u64 * 6 {
            prop_assert_eq!(cache.probe(line * 16), model.probe(line * 16));
        }
    }
}

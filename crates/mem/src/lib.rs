//! # remap-mem
//!
//! The memory hierarchy of the ReMAP reproduction: per-core L1 instruction
//! and data caches, private L2 caches, a snooping bus implementing MESI
//! coherence, and a flat DRAM backing store.
//!
//! Parameters follow Table II of the paper: 8 kB 2-way L1s with 2-cycle
//! access, 1 MB private L2 with 10-cycle access, MESI coherence, and 100 ns
//! main memory (200 cycles at the 2 GHz core clock).
//!
//! The hierarchy is *timing-directed, functionally flat*: caches track tags,
//! MESI states and LRU for timing and power accounting, while data always
//! lives in the shared [`FlatMem`]. This is a standard simulator structure
//! (SESC does the same for most of its models) and keeps functional
//! correctness independent of timing bugs.
//!
//! Misses are *non-blocking* by default: per-core MSHR files overlap and
//! merge outstanding fills, stride/next-line prefetchers run ahead of
//! regular miss streams, and a per-cluster memory controller bounds
//! in-flight DRAM requests (see DESIGN.md §15). All of that is timing-only
//! state; `REMAP_NO_MLP=1` or [`Hierarchy::set_mlp`] restore the blocking
//! latency model exactly.
//!
//! Full misses route through a banked sharer [`Directory`] by default, so
//! only actual sharers are probed instead of every core, with inter-cluster
//! grid-hop charges beyond 16 cores (see DESIGN.md §17). `REMAP_NO_DIR=1`
//! or [`Hierarchy::set_dir`] restore the broadcast snoop walk.
//!
//! ```
//! use remap_mem::{Hierarchy, HierarchyConfig, PC_NONE};
//!
//! let mut h = Hierarchy::new(2, HierarchyConfig::default());
//! let lat_miss = h.store(0, 0x100, 4, 42, 0);
//! let (v, lat_hit) = h.load(0, 0x100, 4, PC_NONE, lat_miss as u64);
//! assert_eq!(v, 42);
//! assert!(lat_hit < lat_miss, "second access hits in the L1");
//! // A load by the other core snoops the modified line out of core 0.
//! let (v1, _) = h.load(1, 0x100, 4, PC_NONE, (lat_miss + lat_hit) as u64);
//! assert_eq!(v1, 42);
//! ```

mod cache;
mod directory;
mod flat;
mod hierarchy;
mod memctl;
mod mshr;
mod prefetch;

pub use cache::{Cache, CacheConfig, CacheStats, Mesi};
pub use directory::{
    dir_enabled_from_env, DirStats, Directory, DIR_BANKS, DIR_BANK_BUSY, DIR_PORTS,
    GRID_HOP_LATENCY,
};
pub use flat::FlatMem;
pub use hierarchy::{
    mlp_enabled_from_env, BusStats, CacheFault, Hierarchy, HierarchyConfig, MlpConfig, MlpStats,
    MC_CLUSTER_CORES, PC_NONE,
};
pub use memctl::MemCtl;
pub use mshr::MshrFile;
pub use prefetch::StrideRpt;

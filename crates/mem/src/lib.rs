//! # remap-mem
//!
//! The memory hierarchy of the ReMAP reproduction: per-core L1 instruction
//! and data caches, private L2 caches, a snooping bus implementing MESI
//! coherence, and a flat DRAM backing store.
//!
//! Parameters follow Table II of the paper: 8 kB 2-way L1s with 2-cycle
//! access, 1 MB private L2 with 10-cycle access, MESI coherence, and 100 ns
//! main memory (200 cycles at the 2 GHz core clock).
//!
//! The hierarchy is *timing-directed, functionally flat*: caches track tags,
//! MESI states and LRU for timing and power accounting, while data always
//! lives in the shared [`FlatMem`]. This is a standard simulator structure
//! (SESC does the same for most of its models) and keeps functional
//! correctness independent of timing bugs.
//!
//! ```
//! use remap_mem::{Hierarchy, HierarchyConfig};
//!
//! let mut h = Hierarchy::new(2, HierarchyConfig::default());
//! let lat_miss = h.store(0, 0x100, 4, 42);
//! let (v, lat_hit) = h.load(0, 0x100, 4);
//! assert_eq!(v, 42);
//! assert!(lat_hit < lat_miss, "second access hits in the L1");
//! // A load by the other core snoops the modified line out of core 0.
//! let (v1, _) = h.load(1, 0x100, 4);
//! assert_eq!(v1, 42);
//! ```

mod cache;
mod flat;
mod hierarchy;

pub use cache::{Cache, CacheConfig, CacheStats, Mesi};
pub use flat::FlatMem;
pub use hierarchy::{BusStats, CacheFault, Hierarchy, HierarchyConfig};

//! Sparse flat backing store holding all architectural data.
//!
//! The store is data-oriented: page payloads live in one append-only arena
//! (`Vec<Box<Page>>`) and a `HashMap` maps page id → arena slot. Hot
//! accessors go word-at-a-time through a small cache of recently resolved
//! `(page id, slot)` pairs, so sequential and strided traffic resolves its
//! page with a short associative probe instead of a hash lookup, and a
//! `read_u32` is one slice read instead of four byte reads. The recency
//! cache deliberately does **not** reorder on hit: entries are replaced
//! round-robin, so a steady working set of up to [`MRU_SLOTS`] pages probes
//! with pure loads and never writes. Accesses that straddle a page boundary
//! fall back to the byte-at-a-time reference path (`read_u8`/`write_u8`),
//! which is the semantic ground truth the property tests compare against.

use std::cell::Cell;
use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Entries in the MRU page-handle cache (checked linearly; keep tiny).
/// Sized to cover the distinct pages a multi-core cycle touches back to
/// back: per-thread input/output slices plus shared flag words.
const MRU_SLOTS: usize = 8;

/// Sentinel page id for empty MRU slots. Unreachable by real addresses:
/// the largest page id is `u64::MAX >> PAGE_SHIFT`.
const NO_PAGE: u64 = u64::MAX;

type Page = [u8; PAGE_SIZE];

/// A sparse, paged, byte-addressable memory.
///
/// Unwritten bytes read as zero. The address space is the full 64-bit range;
/// pages are allocated lazily, so programs may use widely separated regions
/// (per-thread heaps, shared flags) without cost. Pages are never freed, so
/// arena slots stay valid for the lifetime of the memory and the MRU cache
/// never needs invalidation.
///
/// The MRU cache uses interior mutability ([`Cell`]) so that read accessors
/// keep their `&self` signature; as a consequence `FlatMem` is [`Send`] but
/// not [`Sync`] — each simulated system owns its memory exclusively, which
/// is exactly how the parallel sweep runner uses it.
///
/// ```
/// use remap_mem::FlatMem;
/// let mut m = FlatMem::new();
/// m.write_u32(0x1000, 0xdead_beef);
/// assert_eq!(m.read_u32(0x1000), 0xdead_beef);
/// assert_eq!(m.read_u32(0x9999_0000), 0, "unwritten memory reads as zero");
/// ```
#[derive(Debug, Clone)]
pub struct FlatMem {
    /// Page id → slot in `data`.
    index: HashMap<u64, u32>,
    /// Page payloads, append-only (slots are stable).
    data: Vec<Box<Page>>,
    /// Recently resolved `(page id, slot)` pairs; probed linearly, replaced
    /// round-robin (no reordering on hit).
    mru: [Cell<(u64, u32)>; MRU_SLOTS],
    /// Next MRU slot to replace.
    mru_next: Cell<u8>,
}

impl Default for FlatMem {
    fn default() -> FlatMem {
        FlatMem {
            index: HashMap::new(),
            data: Vec::new(),
            mru: [const { Cell::new((NO_PAGE, 0)) }; MRU_SLOTS],
            mru_next: Cell::new(0),
        }
    }
}

impl FlatMem {
    /// Creates an empty memory.
    pub fn new() -> FlatMem {
        FlatMem::default()
    }

    /// Resolves a page id to its arena slot, consulting the MRU cache
    /// before the hash index. Returns `None` for pages never written.
    #[inline]
    fn page_slot(&self, id: u64) -> Option<u32> {
        for slot in &self.mru {
            let (cached_id, s) = slot.get();
            if cached_id == id {
                return Some(s);
            }
        }
        let s = *self.index.get(&id)?;
        self.remember(id, s);
        Some(s)
    }

    /// Installs a freshly resolved page handle at the round-robin slot.
    #[inline]
    fn remember(&self, id: u64, slot: u32) {
        let n = self.mru_next.get() as usize;
        self.mru[n].set((id, slot));
        self.mru_next.set(((n + 1) % MRU_SLOTS) as u8);
    }

    /// The resident page containing `addr`, if any.
    #[inline]
    fn page_of(&self, addr: u64) -> Option<&Page> {
        self.page_slot(addr >> PAGE_SHIFT)
            .map(|s| &*self.data[s as usize])
    }

    /// The page containing `addr`, allocating it (zeroed) if absent.
    #[inline]
    fn page_of_mut(&mut self, addr: u64) -> &mut Page {
        let id = addr >> PAGE_SHIFT;
        let slot = match self.page_slot(id) {
            Some(s) => s,
            None => {
                let s = u32::try_from(self.data.len()).expect("page arena slot overflow");
                self.data.push(Box::new([0u8; PAGE_SIZE]));
                self.index.insert(id, s);
                self.remember(id, s);
                s
            }
        };
        &mut self.data[slot as usize]
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.page_of(addr) {
            Some(p) => p[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, val: u8) {
        self.page_of_mut(addr)[(addr as usize) & (PAGE_SIZE - 1)] = val;
    }

    /// Reads a little-endian 32-bit word (no alignment requirement).
    #[inline]
    pub fn read_u32(&self, addr: u64) -> u32 {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off <= PAGE_SIZE - 4 {
            match self.page_of(addr) {
                Some(p) => u32::from_le_bytes(p[off..off + 4].try_into().unwrap()),
                None => 0,
            }
        } else {
            let mut b = [0u8; 4];
            for (i, byte) in b.iter_mut().enumerate() {
                *byte = self.read_u8(addr.wrapping_add(i as u64));
            }
            u32::from_le_bytes(b)
        }
    }

    /// Writes a little-endian 32-bit word.
    #[inline]
    pub fn write_u32(&mut self, addr: u64, val: u32) {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off <= PAGE_SIZE - 4 {
            self.page_of_mut(addr)[off..off + 4].copy_from_slice(&val.to_le_bytes());
        } else {
            for (i, byte) in val.to_le_bytes().iter().enumerate() {
                self.write_u8(addr.wrapping_add(i as u64), *byte);
            }
        }
    }

    /// Reads a little-endian 64-bit word.
    #[inline]
    pub fn read_u64(&self, addr: u64) -> u64 {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off <= PAGE_SIZE - 8 {
            match self.page_of(addr) {
                Some(p) => u64::from_le_bytes(p[off..off + 8].try_into().unwrap()),
                None => 0,
            }
        } else {
            (self.read_u32(addr) as u64) | ((self.read_u32(addr.wrapping_add(4)) as u64) << 32)
        }
    }

    /// Writes a little-endian 64-bit word.
    #[inline]
    pub fn write_u64(&mut self, addr: u64, val: u64) {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off <= PAGE_SIZE - 8 {
            self.page_of_mut(addr)[off..off + 8].copy_from_slice(&val.to_le_bytes());
        } else {
            self.write_u32(addr, val as u32);
            self.write_u32(addr.wrapping_add(4), (val >> 32) as u32);
        }
    }

    /// Copies `out.len()` bytes starting at `addr` into `out`, page by page
    /// (line-granular reads for cache-line–sized transfers).
    pub fn read_bytes(&self, mut addr: u64, out: &mut [u8]) {
        let mut out = &mut out[..];
        while !out.is_empty() {
            let off = (addr as usize) & (PAGE_SIZE - 1);
            let chunk = out.len().min(PAGE_SIZE - off);
            let (head, tail) = out.split_at_mut(chunk);
            match self.page_of(addr) {
                Some(p) => head.copy_from_slice(&p[off..off + chunk]),
                None => head.fill(0),
            }
            out = tail;
            addr = addr.wrapping_add(chunk as u64);
        }
    }

    /// Writes `src` starting at `addr`, page by page.
    pub fn write_bytes(&mut self, mut addr: u64, mut src: &[u8]) {
        while !src.is_empty() {
            let off = (addr as usize) & (PAGE_SIZE - 1);
            let chunk = src.len().min(PAGE_SIZE - off);
            self.page_of_mut(addr)[off..off + chunk].copy_from_slice(&src[..chunk]);
            src = &src[chunk..];
            addr = addr.wrapping_add(chunk as u64);
        }
    }

    /// Writes a slice of 32-bit words starting at `addr` (a convenience for
    /// initializing workload arrays).
    pub fn write_words(&mut self, addr: u64, words: &[i32]) {
        for (i, w) in words.iter().enumerate() {
            self.write_u32(addr + 4 * i as u64, *w as u32);
        }
    }

    /// Fills `n` consecutive 32-bit words starting at `addr` with `val`
    /// (workload setup helper for constant-initialized arrays).
    pub fn fill_words(&mut self, addr: u64, val: i32, n: usize) {
        for i in 0..n {
            self.write_u32(addr + 4 * i as u64, val as u32);
        }
    }

    /// Reads `n` consecutive 32-bit words starting at `addr`.
    pub fn read_words(&self, addr: u64, n: usize) -> Vec<i32> {
        (0..n)
            .map(|i| self.read_u32(addr + 4 * i as u64) as i32)
            .collect()
    }

    /// Number of resident (lazily allocated) pages; useful in tests.
    pub fn resident_pages(&self) -> usize {
        self.data.len()
    }

    /// Serializes all resident pages, sorted by page id so the encoding is
    /// independent of hash-map iteration order (arena slot numbers are an
    /// internal detail and are renumbered on load).
    pub fn save_state(&self, w: &mut remap_snap::Writer) {
        let mut ids: Vec<(u64, u32)> = self.index.iter().map(|(&id, &s)| (id, s)).collect();
        ids.sort_unstable_by_key(|&(id, _)| id);
        w.put_len(ids.len());
        for (id, slot) in ids {
            w.put_u64(id);
            w.put_bytes(&self.data[slot as usize][..]);
        }
    }

    /// Replaces the entire memory contents with state written by
    /// [`FlatMem::save_state`]. The MRU handle cache is reset (it is a pure
    /// lookup shortcut and carries no architectural state).
    pub fn load_state(&mut self, r: &mut remap_snap::Reader) -> Result<(), remap_snap::SnapError> {
        let n = r.get_len(1 << 28)?;
        self.index.clear();
        self.data.clear();
        for slot in self.mru.iter() {
            slot.set((NO_PAGE, 0));
        }
        self.mru_next.set(0);
        for i in 0..n {
            let id = r.get_u64()?;
            let bytes = r.get_bytes(PAGE_SIZE)?;
            let s = u32::try_from(i).expect("page count bounded above");
            let mut page = Box::new([0u8; PAGE_SIZE]);
            page.copy_from_slice(bytes);
            self.data.push(page);
            if self.index.insert(id, s).is_some() {
                return Err(remap_snap::SnapError::Corrupt(format!(
                    "duplicate page id {id:#x}"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_before_write() {
        let m = FlatMem::new();
        assert_eq!(m.read_u8(12345), 0);
        assert_eq!(m.read_u64(0xffff_ffff_ffff_fff0), 0);
    }

    #[test]
    fn byte_word_round_trip() {
        let mut m = FlatMem::new();
        m.write_u32(10, 0x0403_0201);
        assert_eq!(m.read_u8(10), 1);
        assert_eq!(m.read_u8(11), 2);
        assert_eq!(m.read_u8(12), 3);
        assert_eq!(m.read_u8(13), 4);
    }

    #[test]
    fn cross_page_word() {
        let mut m = FlatMem::new();
        let addr = PAGE_SIZE as u64 - 2; // straddles the page boundary
        m.write_u32(addr, 0xaabb_ccdd);
        assert_eq!(m.read_u32(addr), 0xaabb_ccdd);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn cross_page_u64() {
        let mut m = FlatMem::new();
        for lead in 1..8u64 {
            let addr = 3 * PAGE_SIZE as u64 - lead;
            let v = 0x0102_0304_0506_0708u64.wrapping_mul(lead);
            m.write_u64(addr, v);
            assert_eq!(m.read_u64(addr), v, "straddle with {lead} leading bytes");
        }
    }

    #[test]
    fn u64_round_trip() {
        let mut m = FlatMem::new();
        m.write_u64(100, u64::MAX - 3);
        assert_eq!(m.read_u64(100), u64::MAX - 3);
    }

    #[test]
    fn word_slice_helpers() {
        let mut m = FlatMem::new();
        m.write_words(0x2000, &[1, -2, 3]);
        assert_eq!(m.read_words(0x2000, 3), vec![1, -2, 3]);
    }

    #[test]
    fn fill_words_matches_write_words() {
        let mut m = FlatMem::new();
        m.fill_words(0x3000, -7, 5);
        assert_eq!(m.read_words(0x3000, 5), vec![-7; 5]);
    }

    #[test]
    fn bulk_bytes_round_trip_across_pages() {
        let mut m = FlatMem::new();
        let base = PAGE_SIZE as u64 - 13;
        let src: Vec<u8> = (0..40).map(|i| i as u8 ^ 0x5a).collect();
        m.write_bytes(base, &src);
        let mut out = vec![0u8; src.len()];
        m.read_bytes(base, &mut out);
        assert_eq!(out, src);
        for (i, &b) in src.iter().enumerate() {
            assert_eq!(m.read_u8(base + i as u64), b);
        }
    }

    #[test]
    fn read_bytes_of_unwritten_memory_is_zero() {
        let m = FlatMem::new();
        let mut out = [0xffu8; 16];
        m.read_bytes(0x7000_0000, &mut out);
        assert_eq!(out, [0u8; 16]);
    }

    #[test]
    fn mru_cache_survives_many_pages() {
        // Touch more distinct pages than the MRU has slots, then revisit
        // them all: every value must still read back.
        let mut m = FlatMem::new();
        for p in 0..(4 * MRU_SLOTS as u64) {
            m.write_u32(p * PAGE_SIZE as u64 + 8, p as u32 + 1);
        }
        for p in 0..(4 * MRU_SLOTS as u64) {
            assert_eq!(m.read_u32(p * PAGE_SIZE as u64 + 8), p as u32 + 1);
        }
    }

    #[test]
    fn clone_is_independent() {
        let mut a = FlatMem::new();
        a.write_u32(0x100, 1);
        let mut b = a.clone();
        b.write_u32(0x100, 2);
        assert_eq!(a.read_u32(0x100), 1);
        assert_eq!(b.read_u32(0x100), 2);
    }
}

//! Sparse flat backing store holding all architectural data.

use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// A sparse, paged, byte-addressable memory.
///
/// Unwritten bytes read as zero. The address space is the full 64-bit range;
/// pages are allocated lazily, so programs may use widely separated regions
/// (per-thread heaps, shared flags) without cost.
///
/// ```
/// use remap_mem::FlatMem;
/// let mut m = FlatMem::new();
/// m.write_u32(0x1000, 0xdead_beef);
/// assert_eq!(m.read_u32(0x1000), 0xdead_beef);
/// assert_eq!(m.read_u32(0x9999_0000), 0, "unwritten memory reads as zero");
/// ```
#[derive(Debug, Default, Clone)]
pub struct FlatMem {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl FlatMem {
    /// Creates an empty memory.
    pub fn new() -> FlatMem {
        FlatMem::default()
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(p) => p[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, val: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr as usize) & (PAGE_SIZE - 1)] = val;
    }

    /// Reads a little-endian 32-bit word (no alignment requirement).
    pub fn read_u32(&self, addr: u64) -> u32 {
        let mut b = [0u8; 4];
        for (i, byte) in b.iter_mut().enumerate() {
            *byte = self.read_u8(addr.wrapping_add(i as u64));
        }
        u32::from_le_bytes(b)
    }

    /// Writes a little-endian 32-bit word.
    pub fn write_u32(&mut self, addr: u64, val: u32) {
        for (i, byte) in val.to_le_bytes().iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), *byte);
        }
    }

    /// Reads a little-endian 64-bit word.
    pub fn read_u64(&self, addr: u64) -> u64 {
        (self.read_u32(addr) as u64) | ((self.read_u32(addr.wrapping_add(4)) as u64) << 32)
    }

    /// Writes a little-endian 64-bit word.
    pub fn write_u64(&mut self, addr: u64, val: u64) {
        self.write_u32(addr, val as u32);
        self.write_u32(addr.wrapping_add(4), (val >> 32) as u32);
    }

    /// Writes a slice of 32-bit words starting at `addr` (a convenience for
    /// initializing workload arrays).
    pub fn write_words(&mut self, addr: u64, words: &[i32]) {
        for (i, w) in words.iter().enumerate() {
            self.write_u32(addr + 4 * i as u64, *w as u32);
        }
    }

    /// Reads `n` consecutive 32-bit words starting at `addr`.
    pub fn read_words(&self, addr: u64, n: usize) -> Vec<i32> {
        (0..n)
            .map(|i| self.read_u32(addr + 4 * i as u64) as i32)
            .collect()
    }

    /// Number of resident (lazily allocated) pages; useful in tests.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_before_write() {
        let m = FlatMem::new();
        assert_eq!(m.read_u8(12345), 0);
        assert_eq!(m.read_u64(0xffff_ffff_ffff_fff0), 0);
    }

    #[test]
    fn byte_word_round_trip() {
        let mut m = FlatMem::new();
        m.write_u32(10, 0x0403_0201);
        assert_eq!(m.read_u8(10), 1);
        assert_eq!(m.read_u8(11), 2);
        assert_eq!(m.read_u8(12), 3);
        assert_eq!(m.read_u8(13), 4);
    }

    #[test]
    fn cross_page_word() {
        let mut m = FlatMem::new();
        let addr = PAGE_SIZE as u64 - 2; // straddles the page boundary
        m.write_u32(addr, 0xaabb_ccdd);
        assert_eq!(m.read_u32(addr), 0xaabb_ccdd);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn u64_round_trip() {
        let mut m = FlatMem::new();
        m.write_u64(100, u64::MAX - 3);
        assert_eq!(m.read_u64(100), u64::MAX - 3);
    }

    #[test]
    fn word_slice_helpers() {
        let mut m = FlatMem::new();
        m.write_words(0x2000, &[1, -2, 3]);
        assert_eq!(m.read_words(0x2000, 3), vec![1, -2, 3]);
    }
}

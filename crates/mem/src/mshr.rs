//! Miss-status holding registers: the bookkeeping that makes the cache
//! hierarchy non-blocking.
//!
//! Each core owns one small [`MshrFile`] per L1 (data and instruction).
//! An entry tracks one outstanding line fill: the line address, the cycle
//! the fill completes, and whether the fill was started by a prefetcher
//! rather than a demand access. The file is *timing-only* state — the
//! functional MESI walk in `Hierarchy` still updates tags and data
//! immediately at request time — so entries never have to be flushed for
//! correctness; they merely shape the latencies handed back to the core.
//!
//! Lifecycle (all transitions are lazy, keyed off the caller's `now`):
//!
//! * **free** — unallocated, or a demand fill whose `done_at` has passed.
//! * **in flight** — `done_at > now`. Demand accesses to the same line
//!   *merge*: their latency is clamped to the fill's completion instead of
//!   paying a fresh round trip.
//! * **prefetch-ready** — a prefetch whose fill has landed but that no
//!   demand has consumed yet. It keeps its slot (it models a held fill
//!   buffer) until a demand consumes it or a demand allocation evicts it.
//!
//! The file is fixed-capacity and allocation-free after construction; the
//! per-cycle simulator hot loop may scan it but never grow it.

/// One miss-status holding register.
#[derive(Debug, Clone, Copy)]
struct Entry {
    /// Line base address of the outstanding fill.
    line: u64,
    /// Cycle the fill data arrives.
    done_at: u64,
    /// Fill was started by a prefetcher and no demand has merged with it.
    prefetch: bool,
    /// Slot is allocated (demand entries also self-free once `done_at`
    /// passes; see [`Entry::is_free`]).
    valid: bool,
}

impl Entry {
    const FREE: Entry = Entry {
        line: 0,
        done_at: 0,
        prefetch: false,
        valid: false,
    };

    fn is_free(&self, now: u64) -> bool {
        // A completed demand fill needs no further tracking: the line is in
        // the tags. A completed *prefetch* still occupies its slot until
        // consumed or evicted — its data lives only in the fill buffer the
        // slot models.
        !self.valid || (!self.prefetch && self.done_at <= now)
    }

    fn in_flight(&self, now: u64) -> bool {
        self.valid && self.done_at > now
    }
}

/// A fixed-capacity file of MSHRs for one cache.
#[derive(Debug, Clone)]
pub struct MshrFile {
    entries: Vec<Entry>,
    /// Latest `done_at` ever allocated: `max_done <= now` proves the file
    /// holds no in-flight fill without scanning, keeping the L1-hit fast
    /// lane O(1) when the memory system is idle.
    max_done: u64,
}

/// Outcome of merging a demand access into an in-flight or ready fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Merge {
    /// Cycle the demand's data is available (≥ the demand's own pipe time).
    pub done_at: u64,
    /// The fill being merged with was an unconsumed prefetch.
    pub was_prefetch: bool,
}

impl MshrFile {
    /// A file with `n` registers, all free.
    pub fn new(n: usize) -> MshrFile {
        MshrFile {
            entries: vec![Entry::FREE; n.max(1)],
            max_done: 0,
        }
    }

    /// Number of registers.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// True when at least one fill is still in flight at `now`.
    pub fn any_in_flight(&self, now: u64) -> bool {
        self.max_done > now && self.entries.iter().any(|e| e.in_flight(now))
    }

    /// Earliest completion among in-flight fills (`None` when idle). This
    /// is the file's wake point: a core refused by a full file can make
    /// progress no earlier.
    pub fn min_done(&self, now: u64) -> Option<u64> {
        self.entries
            .iter()
            .filter(|e| e.in_flight(now))
            .map(|e| e.done_at)
            .min()
    }

    /// Completion cycle of an in-flight fill of `line`, for clamping the
    /// latency of accesses that hit the tags while the line's fill is
    /// still on its way.
    pub fn in_flight_done(&self, line: u64, now: u64) -> Option<u64> {
        if self.max_done <= now {
            return None;
        }
        self.entries
            .iter()
            .find(|e| e.in_flight(now) && e.line == line)
            .map(|e| e.done_at)
    }

    /// True when a demand for `line` can be accepted: it can merge with an
    /// existing fill, a register is free, or a ready-but-unconsumed
    /// prefetch can be evicted. This predicate is the pure issue gate and
    /// must match [`merge`](Self::merge)/[`alloc`](Self::alloc) exactly —
    /// a refusal implies every register is in flight, so the paired wake
    /// point [`min_done`](Self::min_done) always exists.
    pub fn can_accept(&self, line: u64, now: u64) -> bool {
        self.entries.iter().any(|e| {
            e.is_free(now)
                || (e.valid && e.line == line)
                || (e.valid && e.prefetch && e.done_at <= now)
        })
    }

    /// True when a register is truly free (no eviction needed) — the
    /// allocation precondition for prefetches.
    pub fn has_free(&self, now: u64) -> bool {
        self.entries.iter().any(|e| e.is_free(now))
    }

    /// Wake point of a file that can currently refuse demands: when every
    /// register holds an in-flight fill, the earliest completion; `None`
    /// otherwise (a non-full file never blocks anything).
    pub fn blocking_wake(&self, now: u64) -> Option<u64> {
        if self.entries.iter().all(|e| e.in_flight(now)) {
            self.min_done(now)
        } else {
            None
        }
    }

    /// Merges a demand miss of `line` into an existing fill, consuming a
    /// ready prefetch or attaching to an in-flight one. `pipe_done` is the
    /// cycle the demand would finish its own pipe traversal; the merged
    /// completion can never undercut it. `extend` lengthens the fill (the
    /// fault layer's scrub-on-fill penalty). Returns `None` when no entry
    /// for `line` exists.
    pub fn merge(&mut self, line: u64, now: u64, pipe_done: u64, extend: u32) -> Option<Merge> {
        let e = self
            .entries
            .iter_mut()
            .find(|e| e.valid && e.line == line && (e.prefetch || e.done_at > now))?;
        let was_prefetch = e.prefetch;
        let was_ready = e.done_at <= now;
        let done_at = e.done_at.max(pipe_done) + extend as u64;
        if was_ready {
            // Ready prefetch consumed: the fill buffer drains into the
            // cache and the slot is free again. What remains of `done_at`
            // is the demand's own pipe time, not fill time.
            *e = Entry::FREE;
        } else {
            // Still outstanding: it is a demand fill from here on.
            e.prefetch = false;
            e.done_at = done_at;
        }
        self.max_done = self.max_done.max(done_at);
        Some(Merge {
            done_at,
            was_prefetch,
        })
    }

    /// Allocates a register for a fill of `line` completing at `done_at`.
    /// Demand allocations (`prefetch == false`) may evict a ready-but-
    /// unconsumed prefetch; prefetch allocations only take truly free
    /// slots (they must never displace pending useful data). Returns
    /// whether a register was taken — callers fall back to inline
    /// (blocking) latency when it was not.
    pub fn alloc(&mut self, line: u64, done_at: u64, now: u64, prefetch: bool) -> bool {
        let slot = match self.entries.iter().position(|e| e.is_free(now)) {
            Some(i) => Some(i),
            None if !prefetch => {
                // Evict the stalest ready prefetch, if any.
                self.entries
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.valid && e.prefetch && e.done_at <= now)
                    .min_by_key(|(_, e)| e.done_at)
                    .map(|(i, _)| i)
            }
            None => None,
        };
        match slot {
            Some(i) => {
                self.entries[i] = Entry {
                    line,
                    done_at,
                    prefetch,
                    valid: true,
                };
                self.max_done = self.max_done.max(done_at);
                true
            }
            None => false,
        }
    }

    /// Serializes the register file (checkpoint support).
    pub fn save_state(&self, w: &mut remap_snap::Writer) {
        w.put_len(self.entries.len());
        for e in &self.entries {
            w.put_u64(e.line);
            w.put_u64(e.done_at);
            w.put_bool(e.prefetch);
            w.put_bool(e.valid);
        }
        w.put_u64(self.max_done);
    }

    /// Restores state written by [`MshrFile::save_state`] onto a file of
    /// identical capacity.
    pub fn load_state(&mut self, r: &mut remap_snap::Reader) -> Result<(), remap_snap::SnapError> {
        r.get_exact_len(self.entries.len())?;
        for e in &mut self.entries {
            e.line = r.get_u64()?;
            e.done_at = r.get_u64()?;
            e.prefetch = r.get_bool()?;
            e.valid = r.get_bool()?;
        }
        self.max_done = r.get_u64()?;
        Ok(())
    }

    /// True when `line` already has an entry (in flight or ready) — used
    /// to suppress duplicate prefetches.
    pub fn tracks(&self, line: u64, now: u64) -> bool {
        self.entries
            .iter()
            .any(|e| e.valid && e.line == line && (e.prefetch || e.done_at > now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_entries_free_lazily() {
        let mut f = MshrFile::new(2);
        assert!(f.alloc(0x100, 50, 0, false));
        assert!(f.alloc(0x200, 60, 0, false));
        assert!(!f.alloc(0x300, 70, 0, false), "file full at cycle 0");
        assert!(f.can_accept(0x100, 0), "same line can always merge");
        assert!(!f.can_accept(0x300, 0));
        assert_eq!(f.min_done(0), Some(50));
        // At cycle 50 the first entry has drained.
        assert!(f.alloc(0x300, 120, 50, false));
        assert_eq!(f.min_done(50), Some(60));
    }

    #[test]
    fn merge_clamps_to_fill_completion() {
        let mut f = MshrFile::new(2);
        f.alloc(0x100, 200, 0, false);
        let m = f.merge(0x100, 10, 22, 0).expect("in flight");
        assert_eq!(m.done_at, 200, "merged demand waits for the fill");
        assert!(!m.was_prefetch);
        assert_eq!(f.merge(0x200, 10, 22, 0), None, "untracked line");
    }

    #[test]
    fn ready_prefetch_is_consumed_once() {
        let mut f = MshrFile::new(1);
        f.alloc(0x100, 30, 0, true);
        assert!(f.tracks(0x100, 100), "ready prefetch keeps its slot");
        let m = f.merge(0x100, 100, 112, 0).expect("ready prefetch");
        assert!(m.was_prefetch);
        assert_eq!(m.done_at, 112, "data is waiting; only pipe time remains");
        assert!(!f.tracks(0x100, 100), "consumed");
        assert!(f.alloc(0x200, 300, 100, true), "slot is free again");
    }

    #[test]
    fn demand_alloc_evicts_ready_prefetch_but_prefetch_does_not() {
        let mut f = MshrFile::new(1);
        f.alloc(0x100, 30, 0, true);
        assert!(!f.alloc(0x200, 300, 50, true), "prefetch cannot evict");
        assert!(f.alloc(0x200, 300, 50, false), "demand can");
        assert!(f.tracks(0x200, 50) && !f.tracks(0x100, 50));
    }

    #[test]
    fn scrub_extension_lengthens_the_fill() {
        let mut f = MshrFile::new(1);
        f.alloc(0x100, 40, 0, true);
        let m = f.merge(0x100, 10, 22, 30).expect("in flight");
        assert_eq!(m.done_at, 70, "40 (fill) + 30 (scrub)");
        assert_eq!(f.in_flight_done(0x100, 10), Some(70), "entry extended");
    }

    #[test]
    fn idle_file_reports_no_wake_point() {
        let mut f = MshrFile::new(4);
        assert_eq!(f.min_done(0), None);
        assert!(!f.any_in_flight(0));
        f.alloc(0x100, 10, 0, false);
        assert!(f.any_in_flight(5));
        assert!(!f.any_in_flight(10), "fill landed");
    }
}

//! The full multi-core memory hierarchy with MESI coherence.

use crate::cache::{Cache, CacheConfig, CacheStats, Mesi};
use crate::flat::FlatMem;
use remap_fault::{Roller, SiteCfg, SiteCounters};

/// Deterministic L1/L2 line-corruption injection for one hierarchy.
///
/// One fault roll per *full-miss line fill* (the data crosses the snoop bus
/// or the DRAM channel — the vulnerable transfer). With line parity the
/// corrupted fill is detected and re-fetched at a scrub latency; without it
/// one bit of the filled word flips in functional memory, which workload
/// oracles observe as silent corruption.
#[derive(Debug, Clone)]
pub struct CacheFault {
    roller: Roller,
    corrupt: SiteCfg,
    parity: bool,
    scrub_cycles: u32,
    counters: SiteCounters,
}

impl CacheFault {
    /// A fault stream under master `seed`. `scrub_cycles` is the extra fill
    /// latency of a detected-and-refetched line.
    pub fn new(seed: u64, corrupt: SiteCfg, parity: bool, scrub_cycles: u32) -> CacheFault {
        CacheFault {
            roller: Roller::new(seed, remap_fault::SITE_CACHE),
            corrupt,
            parity,
            scrub_cycles,
            counters: SiteCounters::default(),
        }
    }

    /// Accounting so far.
    pub fn counters(&self) -> SiteCounters {
        self.counters
    }
}

/// Latency and geometry parameters for the whole hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Private L2 geometry.
    pub l2: CacheConfig,
    /// Main-memory access latency in core cycles (100 ns @ 2 GHz = 200).
    pub dram_latency: u32,
    /// Cache-to-cache transfer latency over the snoop bus.
    pub c2c_latency: u32,
    /// Invalidate/upgrade bus transaction latency.
    pub upgrade_latency: u32,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            l1i: CacheConfig::l1(),
            l1d: CacheConfig::l1(),
            l2: CacheConfig::l2(),
            dram_latency: 200,
            c2c_latency: 20,
            upgrade_latency: 10,
        }
    }
}

/// Snoop-bus and memory-controller activity counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BusStats {
    /// Upgrade (invalidate) transactions issued by stores to Shared lines.
    pub upgrades: u64,
    /// Lines supplied by a remote cache (dirty or clean).
    pub c2c_transfers: u64,
    /// Main-memory fetches.
    pub dram_accesses: u64,
    /// Broadcast snoop probes issued.
    pub snoops: u64,
}

#[derive(Debug, Clone)]
struct CorePrivate {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
}

/// The multi-core memory hierarchy.
///
/// Owns the flat backing store plus per-core private caches, and applies the
/// MESI protocol over an idealized atomic snoop bus. All methods return the
/// access latency in *core cycles*; the core model adds it to the requesting
/// instruction's completion time (a blocking-miss model: misses from one core
/// do not overlap with each other, which is conservative and matches the
/// single load/store unit of Table II).
#[derive(Debug, Clone)]
pub struct Hierarchy {
    cfg: HierarchyConfig,
    cores: Vec<CorePrivate>,
    mem: FlatMem,
    bus: BusStats,
    fault: Option<Box<CacheFault>>,
}

impl Hierarchy {
    /// Creates a hierarchy for `n_cores` cores with empty caches and memory.
    pub fn new(n_cores: usize, cfg: HierarchyConfig) -> Hierarchy {
        let cores = (0..n_cores)
            .map(|_| CorePrivate {
                l1i: Cache::new(cfg.l1i),
                l1d: Cache::new(cfg.l1d),
                l2: Cache::new(cfg.l2),
            })
            .collect();
        Hierarchy {
            cfg,
            cores,
            mem: FlatMem::new(),
            bus: BusStats::default(),
            fault: None,
        }
    }

    /// Installs (or clears) the line-corruption fault stream.
    pub fn set_fault(&mut self, fault: Option<CacheFault>) {
        self.fault = fault.map(Box::new);
    }

    /// Fault accounting so far (all zeros when no stream is installed).
    pub fn fault_counters(&self) -> SiteCounters {
        self.fault.as_ref().map(|f| f.counters).unwrap_or_default()
    }

    /// Number of cores this hierarchy serves.
    pub fn n_cores(&self) -> usize {
        self.cores.len()
    }

    /// The configuration in force.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Shared functional memory (for workload setup and result inspection).
    pub fn mem(&self) -> &FlatMem {
        &self.mem
    }

    /// Mutable access to functional memory.
    pub fn mem_mut(&mut self) -> &mut FlatMem {
        &mut self.mem
    }

    /// Bus/DRAM counters.
    pub fn bus_stats(&self) -> &BusStats {
        &self.bus
    }

    /// L1I/L1D/L2 counters for one core.
    pub fn cache_stats(&self, core: usize) -> (CacheStats, CacheStats, CacheStats) {
        let c = &self.cores[core];
        (*c.l1i.stats(), *c.l1d.stats(), *c.l2.stats())
    }

    /// Quiescence probe: the next outstanding miss fill scheduled inside the
    /// hierarchy. This model is blocking-latency — every fetch/load/store/amo
    /// charges its full latency inline and leaves no timed state behind, so
    /// there is never a pending fill here; outstanding misses live entirely
    /// in the cores' own timestamps (`fetch_inflight_at`, ROB `Executing`).
    /// Always `None` (nothing scheduled, purely reactive).
    pub fn next_event(&self) -> Option<u64> {
        None
    }

    /// Instruction-fetch timing for the line containing `addr`.
    ///
    /// Instruction lines are read-only, so no coherence actions are needed;
    /// misses fill both L2 and L1I in Shared state. The L1I-hit fast lane
    /// answers without touching anything beyond the L1I tag array.
    pub fn inst_fetch(&mut self, core: usize, addr: u64) -> u32 {
        let lat = self.cfg.l1i.hit_latency;
        if self.cores[core].l1i.access(addr).is_some() {
            return lat;
        }
        self.inst_fetch_miss(core, addr, lat)
    }

    /// Instruction-fetch miss path: L2 and, if needed, DRAM.
    fn inst_fetch_miss(&mut self, core: usize, addr: u64, mut lat: u32) -> u32 {
        lat += self.cfg.l2.hit_latency;
        if self.cores[core].l2.access(addr).is_none() {
            lat += self.cfg.dram_latency;
            self.bus.dram_accesses += 1;
            self.insert_l2_inclusive(core, addr, Mesi::Shared);
        }
        self.cores[core].l1i.insert(addr, Mesi::Shared);
        lat
    }

    /// Data load: returns the `size`-byte little-endian value (1, 4, or 8
    /// bytes) and the access latency.
    pub fn load(&mut self, core: usize, addr: u64, size: u8) -> (u64, u32) {
        let lat = self.data_access(core, addr, false);
        let v = match size {
            1 => self.mem.read_u8(addr) as u64,
            4 => self.mem.read_u32(addr) as u64,
            8 => self.mem.read_u64(addr),
            s => panic!("unsupported load size {s}"),
        };
        (v, lat)
    }

    /// Data store of the `size` low bytes of `value`; returns the latency.
    pub fn store(&mut self, core: usize, addr: u64, size: u8, value: u64) -> u32 {
        let lat = self.data_access(core, addr, true);
        match size {
            1 => self.mem.write_u8(addr, value as u8),
            4 => self.mem.write_u32(addr, value as u32),
            8 => self.mem.write_u64(addr, value),
            s => panic!("unsupported store size {s}"),
        }
        lat
    }

    /// Atomic 32-bit fetch-and-add; returns the previous value and latency.
    pub fn amo_add(&mut self, core: usize, addr: u64, delta: i64) -> (i64, u32) {
        let lat = self.data_access(core, addr, true);
        let old = self.mem.read_u32(addr) as i32;
        self.mem
            .write_u32(addr, (old as i64).wrapping_add(delta) as u32);
        (old as i64, lat)
    }

    /// Timing-only data access used by both loads and stores.
    ///
    /// The **L1-hit fast lane**: a load hitting the private L1D in any
    /// valid state, or a store hitting it in Modified, is fully answered
    /// here — no MESI state transition, no snoop, no L2 touch. A store
    /// hitting Exclusive performs the silent local E→M upgrade (still no
    /// bus traffic). Everything else — misses, stores to Shared lines
    /// (which must broadcast an upgrade), and cross-core transfers — falls
    /// back to the full protocol in [`data_access_slow`](Self::data_access_slow).
    fn data_access(&mut self, core: usize, addr: u64, write: bool) -> u32 {
        let lat = self.cfg.l1d.hit_latency;
        match self.cores[core].l1d.access(addr) {
            Some(Mesi::Modified) => lat,
            Some(Mesi::Exclusive | Mesi::Shared) if !write => lat,
            Some(Mesi::Exclusive) => {
                // Silent local upgrade: no bus transaction needed.
                self.cores[core].l1d.set_state(addr, Mesi::Modified);
                self.cores[core].l2.set_state(addr, Mesi::Modified);
                lat
            }
            Some(Mesi::Shared) => {
                // Store to a Shared line: bus upgrade, invalidate remotes.
                self.bus.upgrades += 1;
                self.invalidate_remotes(core, addr);
                self.cores[core].l1d.set_state(addr, Mesi::Modified);
                self.cores[core].l2.set_state(addr, Mesi::Modified);
                lat + self.cfg.upgrade_latency
            }
            Some(Mesi::Invalid) | None => self.data_access_slow(core, addr, write, lat),
        }
    }

    /// Full-protocol path on an L1D miss: private L2, then snoop/DRAM.
    /// Outlined so the fast lane above stays small enough to inline into
    /// the cores' load/store ports.
    fn data_access_slow(&mut self, core: usize, addr: u64, write: bool, mut lat: u32) -> u32 {
        // L1D miss: consult the private L2.
        lat += self.cfg.l2.hit_latency;
        let l2_state = self.cores[core].l2.access(addr);
        let fill = match l2_state {
            Some(st @ (Mesi::Modified | Mesi::Exclusive)) => {
                if write {
                    self.cores[core].l2.set_state(addr, Mesi::Modified);
                    Mesi::Modified
                } else {
                    st
                }
            }
            Some(Mesi::Shared) => {
                if write {
                    lat += self.cfg.upgrade_latency;
                    self.bus.upgrades += 1;
                    self.invalidate_remotes(core, addr);
                    self.cores[core].l2.set_state(addr, Mesi::Modified);
                    Mesi::Modified
                } else {
                    Mesi::Shared
                }
            }
            Some(Mesi::Invalid) | None => {
                // Full miss: snoop the other cores, then memory if needed.
                self.bus.snoops += 1;
                let remote = self.snoop_remotes(core, addr, write);
                let fill = match remote {
                    SnoopResult::SuppliedDirty | SnoopResult::SuppliedClean => {
                        lat += self.cfg.c2c_latency;
                        self.bus.c2c_transfers += 1;
                        if write {
                            Mesi::Modified
                        } else {
                            Mesi::Shared
                        }
                    }
                    SnoopResult::Nobody => {
                        lat += self.cfg.dram_latency;
                        self.bus.dram_accesses += 1;
                        if write {
                            Mesi::Modified
                        } else {
                            Mesi::Exclusive
                        }
                    }
                };
                self.insert_l2_inclusive(core, addr, fill);
                // One fault roll per full-miss fill: the line just crossed
                // the bus. Parity scrubs and re-fetches; otherwise one bit
                // of the filled word flips in functional memory.
                if let Some(f) = self.fault.as_deref_mut() {
                    let d = f.roller.draw();
                    if d.fires(&f.corrupt) {
                        f.counters.injected += 1;
                        if f.parity {
                            f.counters.detected += 1;
                            f.counters.recovered += 1;
                            lat += f.scrub_cycles;
                        } else {
                            f.counters.silent += 1;
                            let waddr = addr & !7;
                            let word = self.mem.read_u64(waddr) ^ (1u64 << d.pick(64));
                            self.mem.write_u64(waddr, word);
                        }
                    }
                }
                fill
            }
        };
        // Fill L1D maintaining inclusion bookkeeping on eviction.
        if let Some((evicted, st)) = self.cores[core].l1d.insert(addr, fill) {
            if st == Mesi::Modified {
                // Dirty L1 eviction lands in the (inclusive) L2.
                self.cores[core].l2.set_state(evicted, Mesi::Modified);
            }
        }
        lat
    }

    /// Removes the line from every other core (store path).
    fn invalidate_remotes(&mut self, core: usize, addr: u64) {
        for (i, c) in self.cores.iter_mut().enumerate() {
            if i != core {
                c.l1d.invalidate(addr);
                c.l2.invalidate(addr);
            }
        }
    }

    /// Read/write snoop: downgrades or invalidates remote copies and reports
    /// whether any remote cache supplied the line.
    fn snoop_remotes(&mut self, core: usize, addr: u64, write: bool) -> SnoopResult {
        let mut result = SnoopResult::Nobody;
        for (i, c) in self.cores.iter_mut().enumerate() {
            if i == core {
                continue;
            }
            let st = c.l2.probe(addr).max_with(c.l1d.probe(addr));
            match st {
                Mesi::Modified => {
                    // Owner writes back (data is already functionally in
                    // FlatMem); downgrade or invalidate.
                    if write {
                        c.l1d.invalidate(addr);
                        c.l2.invalidate(addr);
                    } else {
                        c.l1d.set_state(addr, Mesi::Shared);
                        c.l2.set_state(addr, Mesi::Shared);
                    }
                    result = SnoopResult::SuppliedDirty;
                }
                Mesi::Exclusive | Mesi::Shared => {
                    if write {
                        c.l1d.invalidate(addr);
                        c.l2.invalidate(addr);
                    } else {
                        c.l1d.set_state(addr, Mesi::Shared);
                        c.l2.set_state(addr, Mesi::Shared);
                    }
                    if result == SnoopResult::Nobody {
                        result = SnoopResult::SuppliedClean;
                    }
                }
                Mesi::Invalid => {}
            }
        }
        result
    }

    /// Inserts into the L2, invalidating the L1 copy of any evicted line to
    /// preserve inclusion.
    fn insert_l2_inclusive(&mut self, core: usize, addr: u64, state: Mesi) {
        if let Some((evicted, _)) = self.cores[core].l2.insert(addr, state) {
            self.cores[core].l1d.invalidate(evicted);
            self.cores[core].l1i.invalidate(evicted);
        }
    }

    /// Global MESI invariant check (used by property tests): for every line
    /// currently cached anywhere, at most one core holds it Modified or
    /// Exclusive, and an M/E copy excludes all other copies.
    pub fn check_mesi_invariants(&self, addrs: &[u64]) -> Result<(), String> {
        for &addr in addrs {
            let mut owners = 0;
            let mut sharers = 0;
            for (i, c) in self.cores.iter().enumerate() {
                let st = c.l2.probe(addr).max_with(c.l1d.probe(addr));
                match st {
                    Mesi::Modified | Mesi::Exclusive => owners += 1,
                    Mesi::Shared => sharers += 1,
                    Mesi::Invalid => {}
                }
                // L1 must be no more permissive than what coherence allows:
                // if L1 has the line, the inclusive L2 must too.
                if c.l1d.probe(addr) != Mesi::Invalid && c.l2.probe(addr) == Mesi::Invalid {
                    return Err(format!("core {i}: L1 holds {addr:#x} but L2 does not"));
                }
            }
            if owners > 1 {
                return Err(format!("{owners} owners for line {addr:#x}"));
            }
            if owners == 1 && sharers > 0 {
                return Err(format!("owner plus {sharers} sharers for line {addr:#x}"));
            }
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SnoopResult {
    Nobody,
    SuppliedClean,
    SuppliedDirty,
}

trait MesiMax {
    fn max_with(self, other: Mesi) -> Mesi;
}

impl MesiMax for Mesi {
    /// Most-permissive of two states (M > E > S > I).
    fn max_with(self, other: Mesi) -> Mesi {
        fn rank(m: Mesi) -> u8 {
            match m {
                Mesi::Modified => 3,
                Mesi::Exclusive => 2,
                Mesi::Shared => 1,
                Mesi::Invalid => 0,
            }
        }
        if rank(self) >= rank(other) {
            self
        } else {
            other
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h2() -> Hierarchy {
        Hierarchy::new(2, HierarchyConfig::default())
    }

    #[test]
    fn cold_load_goes_to_dram() {
        let mut h = h2();
        let (_, lat) = h.load(0, 0x100, 4);
        assert_eq!(lat, 2 + 10 + 200);
        assert_eq!(h.bus_stats().dram_accesses, 1);
    }

    #[test]
    fn warm_load_hits_l1() {
        let mut h = h2();
        h.load(0, 0x100, 4);
        let (_, lat) = h.load(0, 0x104, 4); // same 32B line
        assert_eq!(lat, 2);
    }

    #[test]
    fn l2_hit_after_l1_eviction_capacity() {
        let mut h = h2();
        // L1 is 8kB 2-way with 32B lines: 128 sets. Three lines mapping to
        // the same set: stride = 128 * 32 = 4096.
        h.load(0, 0x0, 4);
        h.load(0, 0x1000, 4);
        h.load(0, 0x2000, 4); // evicts 0x0 from L1 (still in L2)
        let (_, lat) = h.load(0, 0x0, 4);
        assert_eq!(lat, 2 + 10, "L1 miss, L2 hit");
    }

    #[test]
    fn store_then_remote_load_is_c2c() {
        let mut h = h2();
        h.store(0, 0x100, 4, 7);
        let (v, lat) = h.load(1, 0x100, 4);
        assert_eq!(v, 7);
        assert_eq!(lat, 2 + 10 + 20, "supplied dirty by core 0");
        assert_eq!(h.bus_stats().c2c_transfers, 1);
        // Both ends now Shared.
        h.check_mesi_invariants(&[0x100]).unwrap();
    }

    #[test]
    fn store_to_shared_upgrades_and_invalidates() {
        let mut h = h2();
        h.store(0, 0x100, 4, 7);
        h.load(1, 0x100, 4); // both shared now
        let lat = h.store(0, 0x100, 4, 9);
        assert_eq!(lat, 2 + 10, "L1 hit + upgrade");
        assert_eq!(h.bus_stats().upgrades, 1);
        let (v, lat1) = h.load(1, 0x100, 4);
        assert_eq!(v, 9);
        assert!(lat1 > 2, "core 1 was invalidated and must re-fetch");
        h.check_mesi_invariants(&[0x100]).unwrap();
    }

    #[test]
    fn exclusive_store_is_silent() {
        let mut h = h2();
        h.load(0, 0x100, 4); // fills Exclusive
        let lat = h.store(0, 0x100, 4, 1); // E -> M without bus traffic
        assert_eq!(lat, 2);
        assert_eq!(h.bus_stats().upgrades, 0);
    }

    #[test]
    fn amo_add_returns_old_value() {
        let mut h = h2();
        h.store(0, 0x40, 4, 10);
        let (old, _) = h.amo_add(1, 0x40, 5);
        assert_eq!(old, 10);
        let (v, _) = h.load(0, 0x40, 4);
        assert_eq!(v, 15);
        h.check_mesi_invariants(&[0x40]).unwrap();
    }

    #[test]
    fn inst_fetch_misses_then_hits() {
        let mut h = h2();
        let lat0 = h.inst_fetch(0, 0x4000_0000);
        assert_eq!(lat0, 2 + 10 + 200);
        let lat1 = h.inst_fetch(0, 0x4000_0004);
        assert_eq!(lat1, 2);
    }

    #[test]
    fn write_miss_invalidates_remote_clean_copy() {
        let mut h = h2();
        h.load(0, 0x200, 4); // core 0 Exclusive
        h.store(1, 0x200, 4, 3); // core 1 write miss
        assert_eq!(h.cores[0].l1d.probe(0x200), Mesi::Invalid);
        h.check_mesi_invariants(&[0x200]).unwrap();
    }

    #[test]
    fn negative_amo_delta() {
        let mut h = h2();
        h.store(0, 0x44, 4, 10);
        let (old, _) = h.amo_add(0, 0x44, -4);
        assert_eq!(old, 10);
        assert_eq!(h.load(0, 0x44, 4).0, 6);
    }

    #[test]
    fn parity_protected_fill_scrubs_instead_of_corrupting() {
        use remap_fault::{SiteCfg, PPM_SCALE};
        let mut h = h2();
        h.mem_mut().write_u64(0x100, 0xdead_beef_cafe_f00d);
        h.set_fault(Some(CacheFault::new(
            9,
            SiteCfg::windowed(PPM_SCALE as u32, 0, 1),
            true,
            30,
        )));
        let (v, lat) = h.load(0, 0x100, 8);
        assert_eq!(v, 0xdead_beef_cafe_f00d, "scrubbed fill stays correct");
        assert_eq!(lat, 2 + 10 + 200 + 30, "detected fill pays the scrub");
        let c = h.fault_counters();
        assert_eq!(
            (c.injected, c.detected, c.recovered, c.silent),
            (1, 1, 1, 0)
        );
        // Subsequent hits are outside the window: normal latency.
        assert_eq!(h.load(0, 0x100, 8).1, 2);
    }

    #[test]
    fn unprotected_fill_flips_one_memory_bit() {
        use remap_fault::{SiteCfg, PPM_SCALE};
        let mut h = h2();
        h.mem_mut().write_u64(0x100, 0xdead_beef_cafe_f00d);
        h.set_fault(Some(CacheFault::new(
            9,
            SiteCfg::windowed(PPM_SCALE as u32, 0, 1),
            false,
            30,
        )));
        let (v, lat) = h.load(0, 0x100, 8);
        assert_eq!(
            (v ^ 0xdead_beef_cafe_f00d).count_ones(),
            1,
            "exactly one flipped bit reaches the consumer"
        );
        assert_eq!(lat, 2 + 10 + 200, "silent corruption costs nothing");
        let c = h.fault_counters();
        assert_eq!(
            (c.injected, c.detected, c.recovered, c.silent),
            (1, 0, 0, 1)
        );
    }

    #[test]
    fn cache_fault_stream_is_deterministic() {
        use remap_fault::SiteCfg;
        let run = || {
            let mut h = h2();
            h.set_fault(Some(CacheFault::new(5, SiteCfg::rate(250_000), false, 30)));
            for i in 0..64u64 {
                h.mem_mut().write_u64(0x1000 + i * 8, i);
            }
            let vals: Vec<u64> = (0..64u64)
                .map(|i| h.load(i as usize % 2, 0x1000 + i * 8, 8).0)
                .collect();
            (vals, h.fault_counters())
        };
        let (a, ca) = run();
        let (b, cb) = run();
        assert_eq!(a, b);
        assert_eq!(ca, cb);
        assert!(ca.injected > 0);
    }
}

//! The full multi-core memory hierarchy with MESI coherence.

use crate::cache::{Cache, CacheConfig, CacheStats, Mesi};
use crate::directory::{dir_enabled_from_env, DirStats, Directory};
use crate::flat::FlatMem;
use crate::memctl::MemCtl;
use crate::mshr::MshrFile;
use crate::prefetch::StrideRpt;
use remap_fault::{Roller, SiteCfg, SiteCounters};

/// Deterministic L1/L2 line-corruption injection for one hierarchy.
///
/// One fault roll per *full-miss line fill* (the data crosses the snoop bus
/// or the DRAM channel — the vulnerable transfer). With line parity the
/// corrupted fill is detected and re-fetched at a scrub latency; without it
/// one bit of the filled word flips in functional memory, which workload
/// oracles observe as silent corruption. Under the non-blocking model the
/// scrub penalty lands on the *MSHR fill*: it extends the outstanding
/// entry's completion cycle, so merged accesses wait out the re-fetch too.
#[derive(Debug, Clone)]
pub struct CacheFault {
    roller: Roller,
    corrupt: SiteCfg,
    parity: bool,
    scrub_cycles: u32,
    counters: SiteCounters,
}

impl CacheFault {
    /// A fault stream under master `seed`. `scrub_cycles` is the extra fill
    /// latency of a detected-and-refetched line.
    pub fn new(seed: u64, corrupt: SiteCfg, parity: bool, scrub_cycles: u32) -> CacheFault {
        CacheFault {
            roller: Roller::new(seed, remap_fault::SITE_CACHE),
            corrupt,
            parity,
            scrub_cycles,
            counters: SiteCounters::default(),
        }
    }

    /// Accounting so far.
    pub fn counters(&self) -> SiteCounters {
        self.counters
    }

    /// Serializes the dynamic fault-stream state (checkpoint support).
    /// The site configuration is rebuilt from the fault plan on restore.
    pub fn save_state(&self, w: &mut remap_snap::Writer) {
        w.put_u64(self.roller.event());
        w.put_u64(self.counters.injected);
        w.put_u64(self.counters.detected);
        w.put_u64(self.counters.recovered);
        w.put_u64(self.counters.silent);
    }

    /// Restores state written by [`CacheFault::save_state`].
    pub fn load_state(&mut self, r: &mut remap_snap::Reader) -> Result<(), remap_snap::SnapError> {
        self.roller.set_event(r.get_u64()?);
        self.counters.injected = r.get_u64()?;
        self.counters.detected = r.get_u64()?;
        self.counters.recovered = r.get_u64()?;
        self.counters.silent = r.get_u64()?;
        Ok(())
    }
}

/// Sentinel PC for accesses that must not train the stride prefetcher
/// (stores, atomics, and any caller without instruction context).
pub const PC_NONE: u32 = u32::MAX;

/// Cores per memory-controller cluster: each group of four cores shares
/// one controller (matching the paper's four-core tile grouping).
pub const MC_CLUSTER_CORES: usize = 4;

/// Memory-level-parallelism parameters (MSHR files, prefetchers, and the
/// per-cluster memory controller). See DESIGN.md §15.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MlpConfig {
    /// L1D MSHR registers per core (outstanding data-line fills).
    pub l1d_mshrs: usize,
    /// L1I MSHR registers per core.
    pub l1i_mshrs: usize,
    /// Bounded in-flight DRAM requests per memory controller.
    pub mc_slots: usize,
    /// Line-interleaved DRAM banks per controller.
    pub mc_banks: usize,
    /// Bank-busy window: the conflict penalty a same-bank successor pays.
    pub mc_bank_busy: u32,
    /// Reference-prediction-table rows of the L1D stride prefetcher.
    pub rpt_rows: usize,
    /// Lines fetched ahead per confident stride prediction.
    pub prefetch_degree: u8,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            l1d_mshrs: 4,
            l1i_mshrs: 2,
            mc_slots: 8,
            mc_banks: 8,
            mc_bank_busy: 20,
            rpt_rows: 16,
            prefetch_degree: 4,
        }
    }
}

/// Memory-level-parallelism counters, surfaced in `RunReport`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MlpStats {
    /// Cache hits served while at least one miss was outstanding.
    pub mshr_hits_under_miss: u64,
    /// Demand accesses merged into an already-outstanding fill of the
    /// same line (secondary misses and hits on in-flight lines).
    pub mshr_merges: u64,
    /// Prefetch fills issued (L1D stride + L1I next-line).
    pub prefetch_issued: u64,
    /// Prefetches consumed by a demand after the fill landed (latency
    /// fully hidden).
    pub prefetch_useful: u64,
    /// Prefetches consumed by a demand while still in flight (latency
    /// partially hidden).
    pub prefetch_late: u64,
    /// High-water mark of simultaneously busy memory-controller slots.
    pub mc_queue_peak: u64,
}

impl MlpStats {
    /// Fraction of issued prefetches consumed by a demand (useful + late).
    /// NaN when none were issued — callers that require prefetch activity
    /// check for that explicitly.
    pub fn prefetch_accuracy(&self) -> f64 {
        (self.prefetch_useful + self.prefetch_late) as f64 / self.prefetch_issued as f64
    }
}

/// Whether MLP modeling is enabled given the `REMAP_NO_MLP` value
/// (mirrors `REMAP_NO_SKIP`: any non-empty value disables).
pub fn mlp_enabled_from_env(v: Option<&str>) -> bool {
    !matches!(v, Some(s) if !s.is_empty())
}

/// Timing-only non-blocking-cache state: per-core MSHR files, per-core
/// stride prefetcher tables, and per-cluster memory controllers. The
/// functional MESI walk never consults this — it only shapes latencies.
#[derive(Debug, Clone)]
struct Mlp {
    files_d: Vec<MshrFile>,
    files_i: Vec<MshrFile>,
    rpts: Vec<StrideRpt>,
    mcs: Vec<MemCtl>,
    stats: MlpStats,
}

impl Mlp {
    fn new(n_cores: usize, cfg: &HierarchyConfig) -> Mlp {
        let m = &cfg.mlp;
        Mlp {
            files_d: (0..n_cores).map(|_| MshrFile::new(m.l1d_mshrs)).collect(),
            files_i: (0..n_cores).map(|_| MshrFile::new(m.l1i_mshrs)).collect(),
            rpts: (0..n_cores).map(|_| StrideRpt::new(m.rpt_rows)).collect(),
            mcs: (0..n_cores.div_ceil(MC_CLUSTER_CORES))
                .map(|_| {
                    MemCtl::new(
                        m.mc_slots,
                        m.mc_banks,
                        m.mc_bank_busy,
                        cfg.l1d.line_bytes as u64,
                    )
                })
                .collect(),
            stats: MlpStats::default(),
        }
    }

    fn save_state(&self, w: &mut remap_snap::Writer) {
        w.put_len(self.files_d.len());
        for f in &self.files_d {
            f.save_state(w);
        }
        for f in &self.files_i {
            f.save_state(w);
        }
        for rpt in &self.rpts {
            rpt.save_state(w);
        }
        w.put_len(self.mcs.len());
        for mc in &self.mcs {
            mc.save_state(w);
        }
        w.put_u64(self.stats.mshr_hits_under_miss);
        w.put_u64(self.stats.mshr_merges);
        w.put_u64(self.stats.prefetch_issued);
        w.put_u64(self.stats.prefetch_useful);
        w.put_u64(self.stats.prefetch_late);
        w.put_u64(self.stats.mc_queue_peak);
    }

    fn load_state(&mut self, r: &mut remap_snap::Reader) -> Result<(), remap_snap::SnapError> {
        r.get_exact_len(self.files_d.len())?;
        for f in &mut self.files_d {
            f.load_state(r)?;
        }
        for f in &mut self.files_i {
            f.load_state(r)?;
        }
        for rpt in &mut self.rpts {
            rpt.load_state(r)?;
        }
        r.get_exact_len(self.mcs.len())?;
        for mc in &mut self.mcs {
            mc.load_state(r)?;
        }
        self.stats.mshr_hits_under_miss = r.get_u64()?;
        self.stats.mshr_merges = r.get_u64()?;
        self.stats.prefetch_issued = r.get_u64()?;
        self.stats.prefetch_useful = r.get_u64()?;
        self.stats.prefetch_late = r.get_u64()?;
        self.stats.mc_queue_peak = r.get_u64()?;
        Ok(())
    }
}

/// Latency and geometry parameters for the whole hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Private L2 geometry.
    pub l2: CacheConfig,
    /// Main-memory access latency in core cycles (100 ns @ 2 GHz = 200).
    pub dram_latency: u32,
    /// Cache-to-cache transfer latency over the snoop bus.
    pub c2c_latency: u32,
    /// Invalidate/upgrade bus transaction latency.
    pub upgrade_latency: u32,
    /// Non-blocking-cache (MSHR/prefetch/memory-controller) parameters.
    pub mlp: MlpConfig,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            l1i: CacheConfig::l1(),
            l1d: CacheConfig::l1(),
            l2: CacheConfig::l2(),
            dram_latency: 200,
            c2c_latency: 20,
            upgrade_latency: 10,
            mlp: MlpConfig::default(),
        }
    }
}

/// Snoop-bus and memory-controller activity counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BusStats {
    /// Upgrade (invalidate) transactions issued by stores to Shared lines.
    pub upgrades: u64,
    /// Lines supplied by a remote cache (dirty or clean).
    pub c2c_transfers: u64,
    /// Main-memory fetches.
    pub dram_accesses: u64,
    /// Broadcast snoop probes issued.
    pub snoops: u64,
}

#[derive(Debug, Clone)]
struct CorePrivate {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
}

/// The multi-core memory hierarchy.
///
/// Owns the flat backing store plus per-core private caches, and applies the
/// MESI protocol over an idealized atomic snoop bus. All methods return the
/// access latency in *core cycles*; the core model adds it to the requesting
/// instruction's completion time.
///
/// **Non-blocking misses.** By default the hierarchy models memory-level
/// parallelism: each core has small L1D/L1I MSHR files, demand misses
/// return a completion cycle scheduled through a per-cluster memory
/// controller (bounded in-flight requests, bank conflicts), same-line
/// accesses merge with the outstanding fill, and stride (L1D) / next-line
/// (L1I) prefetchers run ahead of confident miss streams. All of this is
/// *timing-only*: tags, MESI state, and functional data still update
/// immediately at request time, so architectural values are identical with
/// the model on or off (`REMAP_NO_MLP=1` or [`Hierarchy::set_mlp`] recover
/// the old blocking-latency model bit-for-bit).
#[derive(Debug, Clone)]
pub struct Hierarchy {
    cfg: HierarchyConfig,
    cores: Vec<CorePrivate>,
    mem: FlatMem,
    bus: BusStats,
    fault: Option<Box<CacheFault>>,
    mlp: Option<Box<Mlp>>,
    dir: Option<Box<Directory>>,
}

/// Where a full-miss line fill came from (the timing source).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FillSrc {
    C2c,
    Dram,
}

impl Hierarchy {
    /// Creates a hierarchy for `n_cores` cores with empty caches and memory.
    /// MLP modeling is on unless `REMAP_NO_MLP` is set in the environment.
    pub fn new(n_cores: usize, cfg: HierarchyConfig) -> Hierarchy {
        let cores = (0..n_cores)
            .map(|_| CorePrivate {
                l1i: Cache::new(cfg.l1i),
                l1d: Cache::new(cfg.l1d),
                l2: Cache::new(cfg.l2),
            })
            .collect();
        let enabled = mlp_enabled_from_env(std::env::var("REMAP_NO_MLP").ok().as_deref());
        let dir_on =
            n_cores <= 64 && dir_enabled_from_env(std::env::var("REMAP_NO_DIR").ok().as_deref());
        Hierarchy {
            mlp: enabled.then(|| Box::new(Mlp::new(n_cores, &cfg))),
            dir: dir_on.then(|| Box::new(fresh_dir(n_cores, &cfg))),
            cfg,
            cores,
            mem: FlatMem::new(),
            bus: BusStats::default(),
            fault: None,
        }
    }

    /// Enables or disables MLP modeling, overriding `REMAP_NO_MLP`.
    /// Enabling rebuilds the MSHR/prefetch/controller state from scratch
    /// (counters reset); disabling restores the blocking-latency model.
    pub fn set_mlp(&mut self, enabled: bool) {
        self.mlp = enabled.then(|| Box::new(Mlp::new(self.cores.len(), &self.cfg)));
    }

    /// Enables or disables the coherence directory, overriding
    /// `REMAP_NO_DIR`. Enabling reseeds the sharer sets from the lines
    /// currently resident in every private L2 (so mid-run activation is
    /// functionally exact); disabling restores the broadcast snoop walk.
    /// Core counts above 64 always use the broadcast model.
    pub fn set_dir(&mut self, enabled: bool) {
        self.dir = (enabled && self.cores.len() <= 64).then(|| {
            let mut d = Box::new(fresh_dir(self.cores.len(), &self.cfg));
            for (i, c) in self.cores.iter().enumerate() {
                for line in c.l2.resident_line_addrs() {
                    d.add_sharer(line, i);
                }
            }
            d
        });
    }

    /// Whether the directory model is active.
    pub fn dir_enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// Directory counters so far (all zeros when the model is off).
    pub fn dir_stats(&self) -> DirStats {
        self.dir.as_deref().map(|d| d.stats()).unwrap_or_default()
    }

    /// Whether MLP modeling is active.
    pub fn mlp_enabled(&self) -> bool {
        self.mlp.is_some()
    }

    /// MLP counters so far (all zeros when the model is off).
    pub fn mlp_stats(&self) -> MlpStats {
        match self.mlp.as_deref() {
            None => MlpStats::default(),
            Some(m) => {
                let mut s = m.stats;
                s.mc_queue_peak = m
                    .mcs
                    .iter()
                    .map(|mc| mc.queue_peak() as u64)
                    .max()
                    .unwrap_or(0);
                s
            }
        }
    }

    /// Installs (or clears) the line-corruption fault stream.
    pub fn set_fault(&mut self, fault: Option<CacheFault>) {
        self.fault = fault.map(Box::new);
    }

    /// Fault accounting so far (all zeros when no stream is installed).
    pub fn fault_counters(&self) -> SiteCounters {
        self.fault.as_ref().map(|f| f.counters).unwrap_or_default()
    }

    /// Serializes every piece of dynamic hierarchy state: per-core tag
    /// arrays, the functional backing store, bus counters, and — when
    /// present — the cache-fault stream, MLP machinery, and coherence
    /// directory. Presence flags travel with the payload so a snapshot
    /// taken with a model enabled refuses to load into a system without it
    /// (restore never silently rebuilds from scratch: `set_mlp`/`set_dir`
    /// reseed state and would not be bit-identical).
    pub fn save_state(&self, w: &mut remap_snap::Writer) {
        w.put_len(self.cores.len());
        for c in &self.cores {
            c.l1i.save_state(w);
            c.l1d.save_state(w);
            c.l2.save_state(w);
        }
        self.mem.save_state(w);
        w.put_u64(self.bus.upgrades);
        w.put_u64(self.bus.c2c_transfers);
        w.put_u64(self.bus.dram_accesses);
        w.put_u64(self.bus.snoops);
        w.put_bool(self.fault.is_some());
        if let Some(f) = self.fault.as_deref() {
            f.save_state(w);
        }
        w.put_bool(self.mlp.is_some());
        if let Some(m) = self.mlp.as_deref() {
            m.save_state(w);
        }
        w.put_bool(self.dir.is_some());
        if let Some(d) = self.dir.as_deref() {
            d.save_state(w);
        }
    }

    /// Restores state written by [`Hierarchy::save_state`] onto a
    /// hierarchy of identical geometry. The fault stream (when present in
    /// the snapshot) must already be installed via [`Hierarchy::set_fault`]
    /// — the caller rebuilds it from the fault plan — and the MLP/directory
    /// models must match the snapshot's presence flags.
    pub fn load_state(&mut self, r: &mut remap_snap::Reader) -> Result<(), remap_snap::SnapError> {
        use remap_snap::SnapError;
        r.get_exact_len(self.cores.len())?;
        for c in &mut self.cores {
            c.l1i.load_state(r)?;
            c.l1d.load_state(r)?;
            c.l2.load_state(r)?;
        }
        self.mem.load_state(r)?;
        self.bus.upgrades = r.get_u64()?;
        self.bus.c2c_transfers = r.get_u64()?;
        self.bus.dram_accesses = r.get_u64()?;
        self.bus.snoops = r.get_u64()?;
        let has_fault = r.get_bool()?;
        if has_fault != self.fault.is_some() {
            return Err(SnapError::Corrupt(format!(
                "cache-fault stream presence mismatch (snapshot {has_fault}, system {})",
                self.fault.is_some()
            )));
        }
        if let Some(f) = self.fault.as_deref_mut() {
            f.load_state(r)?;
        }
        let has_mlp = r.get_bool()?;
        if has_mlp != self.mlp.is_some() {
            return Err(SnapError::Corrupt(format!(
                "MLP model presence mismatch (snapshot {has_mlp}, system {})",
                self.mlp.is_some()
            )));
        }
        if let Some(m) = self.mlp.as_deref_mut() {
            m.load_state(r)?;
        }
        let has_dir = r.get_bool()?;
        if has_dir != self.dir.is_some() {
            return Err(SnapError::Corrupt(format!(
                "directory presence mismatch (snapshot {has_dir}, system {})",
                self.dir.is_some()
            )));
        }
        if let Some(d) = self.dir.as_deref_mut() {
            d.load_state(r)?;
        }
        Ok(())
    }

    /// Number of cores this hierarchy serves.
    pub fn n_cores(&self) -> usize {
        self.cores.len()
    }

    /// The configuration in force.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Shared functional memory (for workload setup and result inspection).
    pub fn mem(&self) -> &FlatMem {
        &self.mem
    }

    /// Mutable access to functional memory.
    pub fn mem_mut(&mut self) -> &mut FlatMem {
        &mut self.mem
    }

    /// Bus/DRAM counters.
    pub fn bus_stats(&self) -> &BusStats {
        &self.bus
    }

    /// L1I/L1D/L2 counters for one core.
    pub fn cache_stats(&self, core: usize) -> (CacheStats, CacheStats, CacheStats) {
        let c = &self.cores[core];
        (*c.l1i.stats(), *c.l1d.stats(), *c.l2.stats())
    }

    /// Non-mutating (L1D, L2) MESI states of the line containing `addr` in
    /// one core's private caches (state-equivalence checks in tests).
    pub fn probe_states(&self, core: usize, addr: u64) -> (Mesi, Mesi) {
        let c = &self.cores[core];
        (c.l1d.probe(addr), c.l2.probe(addr))
    }

    /// Quiescence probe: the earliest cycle a *blocking* MSHR file drains
    /// or a fully busy directory bank frees a port.
    ///
    /// MSHR entries and directory ports free purely as a function of time,
    /// so the skip engine never needs to tick the hierarchy; the only
    /// hierarchy state that can gate a core's progress is a completely
    /// in-flight L1D file or an all-ports-busy directory bank (the core's
    /// next load is refused by [`load_ready`](Self::load_ready) until the
    /// earliest fill lands or a port frees). Files and banks with a free
    /// register/port — and the blocking broadcast model entirely — report
    /// nothing. Extra wake points are parity-safe; missing ones are not,
    /// so this errs conservative.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        let mshr = self
            .mlp
            .as_deref()
            .and_then(|m| m.files_d.iter().filter_map(|f| f.blocking_wake(now)).min());
        let dir = self.dir.as_deref().and_then(|d| d.next_event(now));
        match (mshr, dir) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Pure issue gate for demand loads: false only when the access would
    /// full-miss and either the directory bank serving the line has no
    /// free port or the core's L1D MSHR file can neither merge it nor
    /// spare a register. The core holds the load and re-probes; in the
    /// blocking broadcast model this is always true.
    pub fn load_ready(&self, core: usize, addr: u64, now: u64) -> bool {
        if self.mlp.is_none() && self.dir.is_none() {
            return true;
        }
        let c = &self.cores[core];
        if c.l1d.probe(addr) != Mesi::Invalid || c.l2.probe(addr) != Mesi::Invalid {
            return true;
        }
        if let Some(d) = self.dir.as_deref() {
            if !d.bank_ready(addr, now) {
                return false;
            }
        }
        let Some(m) = self.mlp.as_deref() else {
            return true;
        };
        m.files_d[core].can_accept(c.l1d.line_addr(addr), now)
    }

    /// Whether a refused load is held by directory-bank occupancy rather
    /// than a full MSHR file (deadlock-report attribution).
    pub fn load_blocked_by_dir(&self, core: usize, addr: u64, now: u64) -> bool {
        let Some(d) = self.dir.as_deref() else {
            return false;
        };
        let c = &self.cores[core];
        c.l1d.probe(addr) == Mesi::Invalid
            && c.l2.probe(addr) == Mesi::Invalid
            && !d.bank_ready(addr, now)
    }

    /// Wake point paired with [`load_ready`](Self::load_ready): the
    /// earliest cycle the core's L1D MSHR file frees a register or a
    /// blocking directory bank frees a port. The MSHR half is exact (the
    /// file only mutates during the owning core's own accesses and frees
    /// purely by time); the directory half may undershoot when another
    /// core claims the freed port first, which is safe — the refused load
    /// just re-probes.
    pub fn load_wake(&self, core: usize, now: u64) -> u64 {
        let mshr = self
            .mlp
            .as_deref()
            .and_then(|m| m.files_d[core].min_done(now))
            .unwrap_or(u64::MAX);
        let dir = self
            .dir
            .as_deref()
            .and_then(|d| d.next_event(now))
            .unwrap_or(u64::MAX);
        mshr.min(dir)
    }

    /// Instruction-fetch timing for the line containing `addr`.
    ///
    /// Instruction lines are read-only, so no coherence actions are needed;
    /// misses fill both L2 and L1I in Shared state. The L1I-hit fast lane
    /// answers without touching anything beyond the L1I tag array (plus, in
    /// the MLP model, a clamp against an in-flight fill of the same line).
    pub fn inst_fetch(&mut self, core: usize, addr: u64, now: u64) -> u32 {
        let lat = self.cfg.l1i.hit_latency;
        if self.cores[core].l1i.access(addr).is_some() {
            let Some(m) = self.mlp.as_deref_mut() else {
                return lat;
            };
            let line = self.cores[core].l1i.line_addr(addr);
            return clamp_hit(&m.files_i[core], &mut m.stats, line, lat, now);
        }
        self.inst_fetch_miss(core, addr, lat, now)
    }

    /// Instruction-fetch miss path: L2 and, if needed, DRAM (through the
    /// memory controller with a next-line prefetch under the MLP model).
    fn inst_fetch_miss(&mut self, core: usize, addr: u64, mut lat: u32, now: u64) -> u32 {
        lat += self.cfg.l2.hit_latency;
        if self.cores[core].l2.access(addr).is_some() {
            self.cores[core].l1i.insert(addr, Mesi::Shared);
            return lat;
        }
        self.bus.dram_accesses += 1;
        self.insert_l2_inclusive(core, addr, Mesi::Shared);
        self.cores[core].l1i.insert(addr, Mesi::Shared);
        let dram = self.cfg.dram_latency;
        let line_bytes = self.cfg.l1i.line_bytes as u64;
        let Some(m) = self.mlp.as_deref_mut() else {
            return lat + dram;
        };
        let line = addr & !(line_bytes - 1);
        let pipe_done = now + lat as u64;
        let file = &mut m.files_i[core];
        let mc = &mut m.mcs[core / MC_CLUSTER_CORES];
        let total = if let Some(mg) = file.merge(line, now, pipe_done, 0) {
            m.stats.mshr_merges += 1;
            if mg.was_prefetch {
                if mg.done_at <= pipe_done {
                    m.stats.prefetch_useful += 1;
                } else {
                    m.stats.prefetch_late += 1;
                }
            }
            (mg.done_at - now) as u32
        } else {
            let done = mc.request(pipe_done, line, dram);
            file.alloc(line, done, now, false);
            (done - now) as u32
        };
        // Next-line prefetch: sequential fetch is the common case, so run
        // one line ahead whenever a register and a controller slot are free.
        let next = line + line_bytes;
        if self.cores[core].l1i.probe(next) == Mesi::Invalid
            && !file.tracks(next, now)
            && file.has_free(now)
            && mc.slot_available(pipe_done)
        {
            let done = mc.request(pipe_done, next, dram);
            file.alloc(next, done, now, true);
            m.stats.prefetch_issued += 1;
        }
        total
    }

    /// Data load: returns the `size`-byte little-endian value (1, 4, or 8
    /// bytes) and the access latency. `pc` identifies the load instruction
    /// for the stride prefetcher ([`PC_NONE`] to opt out); `now` is the
    /// current cycle, the reference point for all MLP timing.
    pub fn load(&mut self, core: usize, addr: u64, size: u8, pc: u32, now: u64) -> (u64, u32) {
        let lat = self.data_access(core, addr, false, pc, now);
        let v = match size {
            1 => self.mem.read_u8(addr) as u64,
            4 => self.mem.read_u32(addr) as u64,
            8 => self.mem.read_u64(addr),
            s => panic!("unsupported load size {s}"),
        };
        (v, lat)
    }

    /// Data store of the `size` low bytes of `value`; returns the latency.
    pub fn store(&mut self, core: usize, addr: u64, size: u8, value: u64, now: u64) -> u32 {
        let lat = self.data_access(core, addr, true, PC_NONE, now);
        match size {
            1 => self.mem.write_u8(addr, value as u8),
            4 => self.mem.write_u32(addr, value as u32),
            8 => self.mem.write_u64(addr, value),
            s => panic!("unsupported store size {s}"),
        }
        lat
    }

    /// Atomic 32-bit fetch-and-add; returns the previous value and latency.
    pub fn amo_add(&mut self, core: usize, addr: u64, delta: i64, now: u64) -> (i64, u32) {
        let lat = self.data_access(core, addr, true, PC_NONE, now);
        let old = self.mem.read_u32(addr) as i32;
        self.mem
            .write_u32(addr, (old as i64).wrapping_add(delta) as u32);
        (old as i64, lat)
    }

    /// Timing-only data access used by both loads and stores.
    ///
    /// The **L1-hit fast lane**: a load hitting the private L1D in any
    /// valid state, or a store hitting it in Modified, is fully answered
    /// here — no MESI state transition, no snoop, no L2 touch. A store
    /// hitting Exclusive performs the silent local E→M upgrade (still no
    /// bus traffic). Everything else — misses, stores to Shared lines
    /// (which must broadcast an upgrade), and cross-core transfers — falls
    /// back to the full protocol in [`data_access_slow`](Self::data_access_slow).
    /// Under the MLP model a hit's latency is clamped against an in-flight
    /// fill of the same line (secondary-miss merging).
    fn data_access(&mut self, core: usize, addr: u64, write: bool, pc: u32, now: u64) -> u32 {
        let lat = self.cfg.l1d.hit_latency;
        let hit = match self.cores[core].l1d.access(addr) {
            Some(Mesi::Modified) => Some(lat),
            Some(Mesi::Exclusive | Mesi::Shared) if !write => Some(lat),
            Some(Mesi::Exclusive) => {
                // Silent local upgrade: no bus transaction needed.
                self.cores[core].l1d.set_state(addr, Mesi::Modified);
                self.cores[core].l2.set_state(addr, Mesi::Modified);
                Some(lat)
            }
            Some(Mesi::Shared) => {
                // Store to a Shared line: bus upgrade, invalidate remotes.
                // The upgrade consults the directory, so it pays any
                // bank-port queue delay (zero uncontended).
                self.bus.upgrades += 1;
                let extra = match self.dir.as_deref_mut() {
                    Some(d) => d.occupy(addr, now + lat as u64) as u32,
                    None => 0,
                };
                self.invalidate_remotes(core, addr);
                self.cores[core].l1d.set_state(addr, Mesi::Modified);
                self.cores[core].l2.set_state(addr, Mesi::Modified);
                Some(lat + extra + self.cfg.upgrade_latency)
            }
            Some(Mesi::Invalid) | None => None,
        };
        match hit {
            Some(l) => self.data_hit_latency(core, addr, l, now),
            None => self.data_access_slow(core, addr, write, lat, pc, now),
        }
    }

    /// MLP clamp for L1D/L2 hits: a hit on a line whose fill is still in
    /// flight waits for the fill (a merge); any other hit while misses are
    /// outstanding is the non-blocking win itself (hit under miss).
    #[inline]
    fn data_hit_latency(&mut self, core: usize, addr: u64, lat: u32, now: u64) -> u32 {
        let Some(m) = self.mlp.as_deref_mut() else {
            return lat;
        };
        let line = self.cores[core].l1d.line_addr(addr);
        clamp_hit(&m.files_d[core], &mut m.stats, line, lat, now)
    }

    /// Full-protocol path on an L1D miss: private L2, then snoop/DRAM.
    /// Outlined so the fast lane above stays small enough to inline into
    /// the cores' load/store ports.
    fn data_access_slow(
        &mut self,
        core: usize,
        addr: u64,
        write: bool,
        mut lat: u32,
        pc: u32,
        now: u64,
    ) -> u32 {
        // L1D miss: consult the private L2.
        lat += self.cfg.l2.hit_latency;
        let l2_state = self.cores[core].l2.access(addr);
        let (fill, src, hop) = match l2_state {
            Some(st @ (Mesi::Modified | Mesi::Exclusive)) => {
                let fill = if write {
                    self.cores[core].l2.set_state(addr, Mesi::Modified);
                    Mesi::Modified
                } else {
                    st
                };
                (fill, None, 0)
            }
            Some(Mesi::Shared) => {
                let fill = if write {
                    lat += self.cfg.upgrade_latency;
                    self.bus.upgrades += 1;
                    if let Some(d) = self.dir.as_deref_mut() {
                        lat += d.occupy(addr, now + lat as u64) as u32;
                    }
                    self.invalidate_remotes(core, addr);
                    self.cores[core].l2.set_state(addr, Mesi::Modified);
                    Mesi::Modified
                } else {
                    Mesi::Shared
                };
                (fill, None, 0)
            }
            Some(Mesi::Invalid) | None => {
                // Full miss: consult the directory (or broadcast-snoop the
                // other cores), then memory if needed.
                self.bus.snoops += 1;
                let (remote, hop) = match self.dir.take() {
                    Some(mut dir) => {
                        lat += dir.occupy(addr, now + lat as u64) as u32;
                        let (r, supplier) = self.snoop_sharers(&mut dir, core, addr, write);
                        let hop = if r == SnoopResult::Nobody {
                            0
                        } else {
                            dir.hop_extra(core, supplier) as u32
                        };
                        self.dir = Some(dir);
                        (r, hop)
                    }
                    None => (self.snoop_remotes(core, addr, write), 0),
                };
                let (fill, src) = match remote {
                    SnoopResult::SuppliedDirty | SnoopResult::SuppliedClean => {
                        self.bus.c2c_transfers += 1;
                        let fill = if write { Mesi::Modified } else { Mesi::Shared };
                        (fill, FillSrc::C2c)
                    }
                    SnoopResult::Nobody => {
                        self.bus.dram_accesses += 1;
                        let fill = if write {
                            Mesi::Modified
                        } else {
                            Mesi::Exclusive
                        };
                        (fill, FillSrc::Dram)
                    }
                };
                self.insert_l2_inclusive(core, addr, fill);
                (fill, Some(src), hop)
            }
        };
        // One fault roll per full-miss fill: the line just crossed the
        // bus. Parity scrubs and re-fetches (the penalty extends the fill);
        // otherwise one bit of the filled word flips in functional memory.
        let mut scrub = 0u32;
        if src.is_some() {
            if let Some(f) = self.fault.as_deref_mut() {
                let d = f.roller.draw();
                if d.fires(&f.corrupt) {
                    f.counters.injected += 1;
                    if f.parity {
                        f.counters.detected += 1;
                        f.counters.recovered += 1;
                        scrub = f.scrub_cycles;
                    } else {
                        f.counters.silent += 1;
                        let waddr = addr & !7;
                        let word = self.mem.read_u64(waddr) ^ (1u64 << d.pick(64));
                        self.mem.write_u64(waddr, word);
                    }
                }
            }
        }
        // Fill L1D maintaining inclusion bookkeeping on eviction.
        if let Some((evicted, st)) = self.cores[core].l1d.insert(addr, fill) {
            if st == Mesi::Modified {
                // Dirty L1 eviction lands in the (inclusive) L2.
                self.cores[core].l2.set_state(evicted, Mesi::Modified);
            }
        }
        match src {
            // L2 hit: no fill in flight to start, but still clamp against
            // one already outstanding for this line (and count the hit).
            None => self.data_hit_latency(core, addr, lat, now),
            Some(src) => {
                let total = match self.mlp.as_deref_mut() {
                    None => {
                        // Blocking model: charge the full round trip inline.
                        let src_lat = match src {
                            FillSrc::C2c => self.cfg.c2c_latency + hop,
                            FillSrc::Dram => self.cfg.dram_latency,
                        };
                        lat + src_lat + scrub
                    }
                    Some(m) => {
                        let line = addr & !(self.cfg.l1d.line_bytes as u64 - 1);
                        m.demand_fill(core, line, now, lat, src, hop, scrub, &self.cfg)
                    }
                };
                if pc != PC_NONE {
                    self.issue_data_prefetches(core, addr, pc, now, lat);
                }
                total
            }
        }
    }

    /// Trains the core's reference prediction table on a demand full miss
    /// and issues up to `prefetch_degree` line fills along a confident
    /// stride — each only when the target line is absent, untracked, an
    /// MSHR register is truly free, and the memory controller has a slot
    /// (prefetches never queue behind or displace demand traffic).
    fn issue_data_prefetches(&mut self, core: usize, addr: u64, pc: u32, now: u64, pipe_lat: u32) {
        let line_bytes = self.cfg.l1d.line_bytes as u64;
        let degree = self.cfg.mlp.prefetch_degree as i64;
        let dram = self.cfg.dram_latency;
        let Some(m) = self.mlp.as_deref_mut() else {
            return;
        };
        let Some(stride) = m.rpts[core].train(pc, addr) else {
            return;
        };
        let demand_line = addr & !(line_bytes - 1);
        let t_req = now + pipe_lat as u64;
        let l1d = &self.cores[core].l1d;
        let file = &mut m.files_d[core];
        let mc = &mut m.mcs[core / MC_CLUSTER_CORES];
        for k in 1..=degree {
            let target = addr.wrapping_add(stride.wrapping_mul(k) as u64);
            let tline = target & !(line_bytes - 1);
            if tline == demand_line || l1d.probe(tline) != Mesi::Invalid || file.tracks(tline, now)
            {
                continue;
            }
            if !file.has_free(now) || !mc.slot_available(t_req) {
                break;
            }
            let done = mc.request(t_req, tline, dram);
            file.alloc(tline, done, now, true);
            m.stats.prefetch_issued += 1;
        }
    }

    /// Removes the line from every other core (store path). With the
    /// directory on, only the cores in the sharer mask are probed; the
    /// broadcast walk touches everyone. Functionally identical: a clear
    /// mask bit means the line is absent from that core's L2 and (by
    /// inclusion) its L1D, so skipping it changes nothing.
    fn invalidate_remotes(&mut self, core: usize, addr: u64) {
        let Some(mut dir) = self.dir.take() else {
            for (i, c) in self.cores.iter_mut().enumerate() {
                if i != core {
                    c.l1d.invalidate(addr);
                    c.l2.invalidate(addr);
                }
            }
            return;
        };
        let mut mask = dir.sharers(addr) & !(1u64 << core);
        let probed = mask.count_ones();
        dir.count_probes(probed, self.cores.len() as u32 - 1 - probed);
        while mask != 0 {
            let i = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            self.cores[i].l1d.invalidate(addr);
            self.cores[i].l2.invalidate(addr);
            dir.remove_sharer(addr, i);
        }
        self.dir = Some(dir);
    }

    /// Read/write snoop: downgrades or invalidates remote copies and reports
    /// whether any remote cache supplied the line.
    fn snoop_remotes(&mut self, core: usize, addr: u64, write: bool) -> SnoopResult {
        let mut result = SnoopResult::Nobody;
        for (i, c) in self.cores.iter_mut().enumerate() {
            if i == core {
                continue;
            }
            let st = c.l2.probe(addr).max_with(c.l1d.probe(addr));
            match st {
                Mesi::Modified => {
                    // Owner writes back (data is already functionally in
                    // FlatMem); downgrade or invalidate. MESI guarantees a
                    // Modified copy is the only copy, so the scan can stop:
                    // every remaining core holds the line Invalid, and
                    // probes/invalidates of absent lines are no-ops.
                    if write {
                        c.l1d.invalidate(addr);
                        c.l2.invalidate(addr);
                    } else {
                        c.l1d.set_state(addr, Mesi::Shared);
                        c.l2.set_state(addr, Mesi::Shared);
                    }
                    result = SnoopResult::SuppliedDirty;
                    break;
                }
                Mesi::Exclusive | Mesi::Shared => {
                    if write {
                        c.l1d.invalidate(addr);
                        c.l2.invalidate(addr);
                    } else {
                        c.l1d.set_state(addr, Mesi::Shared);
                        c.l2.set_state(addr, Mesi::Shared);
                    }
                    if result == SnoopResult::Nobody {
                        result = SnoopResult::SuppliedClean;
                    }
                }
                Mesi::Invalid => {}
            }
        }
        result
    }

    /// Directory-routed snoop: identical protocol actions to
    /// [`snoop_remotes`](Self::snoop_remotes) but walking only the sharer
    /// mask. Returns the result plus the supplier core for grid-hop
    /// charging (the dirty owner, or the nearest clean sharer by hops;
    /// `core` itself when nobody supplied).
    fn snoop_sharers(
        &mut self,
        dir: &mut Directory,
        core: usize,
        addr: u64,
        write: bool,
    ) -> (SnoopResult, usize) {
        let mut result = SnoopResult::Nobody;
        let mut supplier = core;
        let mut best_hops = usize::MAX;
        let mut mask = dir.sharers(addr) & !(1u64 << core);
        let probed = mask.count_ones();
        dir.count_probes(probed, self.cores.len() as u32 - 1 - probed);
        while mask != 0 {
            let i = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let c = &mut self.cores[i];
            let st = c.l2.probe(addr).max_with(c.l1d.probe(addr));
            match st {
                Mesi::Modified => {
                    if write {
                        c.l1d.invalidate(addr);
                        c.l2.invalidate(addr);
                        dir.remove_sharer(addr, i);
                    } else {
                        c.l1d.set_state(addr, Mesi::Shared);
                        c.l2.set_state(addr, Mesi::Shared);
                    }
                    result = SnoopResult::SuppliedDirty;
                    supplier = i;
                    break;
                }
                Mesi::Exclusive | Mesi::Shared => {
                    if write {
                        c.l1d.invalidate(addr);
                        c.l2.invalidate(addr);
                        dir.remove_sharer(addr, i);
                    } else {
                        c.l1d.set_state(addr, Mesi::Shared);
                        c.l2.set_state(addr, Mesi::Shared);
                    }
                    if result == SnoopResult::Nobody {
                        result = SnoopResult::SuppliedClean;
                    }
                    let h = dir.hops(core / MC_CLUSTER_CORES, i / MC_CLUSTER_CORES);
                    if h < best_hops {
                        best_hops = h;
                        supplier = i;
                    }
                }
                Mesi::Invalid => {}
            }
        }
        (result, supplier)
    }

    /// Inserts into the L2, invalidating the L1 copy of any evicted line to
    /// preserve inclusion. The directory tracks exactly this residency: the
    /// inserted line gains the core's sharer bit, and an evicted line is
    /// back-invalidated out of the sharer set.
    fn insert_l2_inclusive(&mut self, core: usize, addr: u64, state: Mesi) {
        if let Some(d) = self.dir.as_deref_mut() {
            d.add_sharer(addr, core);
        }
        if let Some((evicted, _)) = self.cores[core].l2.insert(addr, state) {
            self.cores[core].l1d.invalidate(evicted);
            self.cores[core].l1i.invalidate(evicted);
            if let Some(d) = self.dir.as_deref_mut() {
                d.back_invalidate(evicted, core);
            }
        }
    }

    /// Directory inclusion invariant check (used by property tests): every
    /// sharer bit must name a core whose private L2 actually holds the
    /// line, and every resident L2 line must have its owner's bit set —
    /// i.e. the directory is exactly the union of the L2 tag arrays.
    /// `Ok(())` when the directory is disabled.
    pub fn check_directory_residency(&self) -> Result<(), String> {
        let Some(dir) = self.dir.as_deref() else {
            return Ok(());
        };
        let mut want: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for (i, c) in self.cores.iter().enumerate() {
            for line in c.l2.resident_line_addrs() {
                *want.entry(line).or_insert(0) |= 1u64 << i;
            }
        }
        if want.len() != dir.tracked_lines() {
            return Err(format!(
                "directory tracks {} lines but the L2s hold {}",
                dir.tracked_lines(),
                want.len()
            ));
        }
        for (line, mask) in want {
            let got = dir.sharers(line);
            if got != mask {
                return Err(format!(
                    "line {line:#x}: directory mask {got:#b} != L2 residency {mask:#b}"
                ));
            }
        }
        Ok(())
    }

    /// Global MESI invariant check (used by property tests): for every line
    /// currently cached anywhere, at most one core holds it Modified or
    /// Exclusive, and an M/E copy excludes all other copies.
    pub fn check_mesi_invariants(&self, addrs: &[u64]) -> Result<(), String> {
        for &addr in addrs {
            let mut owners = 0;
            let mut sharers = 0;
            for (i, c) in self.cores.iter().enumerate() {
                let st = c.l2.probe(addr).max_with(c.l1d.probe(addr));
                match st {
                    Mesi::Modified | Mesi::Exclusive => owners += 1,
                    Mesi::Shared => sharers += 1,
                    Mesi::Invalid => {}
                }
                // L1 must be no more permissive than what coherence allows:
                // if L1 has the line, the inclusive L2 must too.
                if c.l1d.probe(addr) != Mesi::Invalid && c.l2.probe(addr) == Mesi::Invalid {
                    return Err(format!("core {i}: L1 holds {addr:#x} but L2 does not"));
                }
            }
            if owners > 1 {
                return Err(format!("{owners} owners for line {addr:#x}"));
            }
            if owners == 1 && sharers > 0 {
                return Err(format!("owner plus {sharers} sharers for line {addr:#x}"));
            }
        }
        Ok(())
    }
}

impl Mlp {
    /// Schedules a demand full-miss fill of `line`: merge with an
    /// outstanding or ready fill when one exists (consuming prefetches and
    /// classifying them useful/late), otherwise route through the cluster's
    /// memory controller and allocate an MSHR register. `pipe_lat` is the
    /// L1+L2 pipe traversal already accounted; `scrub` extends the fill on
    /// a detected-and-refetched corruption. Returns the total latency.
    #[allow(clippy::too_many_arguments)]
    fn demand_fill(
        &mut self,
        core: usize,
        line: u64,
        now: u64,
        pipe_lat: u32,
        src: FillSrc,
        hop: u32,
        scrub: u32,
        cfg: &HierarchyConfig,
    ) -> u32 {
        let pipe_done = now + pipe_lat as u64;
        if let Some(mg) = self.files_d[core].merge(line, now, pipe_done, scrub) {
            self.stats.mshr_merges += 1;
            if mg.was_prefetch {
                if mg.done_at <= pipe_done + scrub as u64 {
                    self.stats.prefetch_useful += 1;
                } else {
                    self.stats.prefetch_late += 1;
                }
            }
            return (mg.done_at - now) as u32;
        }
        let done = match src {
            FillSrc::C2c => pipe_done + (cfg.c2c_latency + hop) as u64,
            FillSrc::Dram => {
                self.mcs[core / MC_CLUSTER_CORES].request(pipe_done, line, cfg.dram_latency)
            }
        } + scrub as u64;
        // A full file falls back to the inline (blocking) charge — same
        // latency, just no merge target for successors. Demand loads are
        // normally gated by `load_ready` before reaching here.
        self.files_d[core].alloc(line, done, now, false);
        (done - now) as u32
    }
}

/// A directory pre-sized so the sharer map never reallocates: residency
/// is bounded by the sum of all private-L2 capacities (entries vanish
/// when their last sharer bit clears), so `n_cores × l2_lines` keys is a
/// hard ceiling on the live length.
fn fresh_dir(n_cores: usize, cfg: &HierarchyConfig) -> Directory {
    let l2_lines = cfg.l2.sets() * cfg.l2.ways;
    Directory::new(n_cores, cfg.l2.line_bytes, n_cores * l2_lines)
}

/// Hit-path MLP accounting shared by L1D, L2, and L1I hits.
#[inline]
fn clamp_hit(file: &MshrFile, stats: &mut MlpStats, line: u64, lat: u32, now: u64) -> u32 {
    if !file.any_in_flight(now) {
        return lat;
    }
    if let Some(done) = file.in_flight_done(line, now) {
        // Hit on a line whose fill is still in flight: wait for the fill.
        stats.mshr_merges += 1;
        ((done - now) as u32).max(lat)
    } else {
        stats.mshr_hits_under_miss += 1;
        lat
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SnoopResult {
    Nobody,
    SuppliedClean,
    SuppliedDirty,
}

trait MesiMax {
    fn max_with(self, other: Mesi) -> Mesi;
}

impl MesiMax for Mesi {
    /// Most-permissive of two states (M > E > S > I).
    fn max_with(self, other: Mesi) -> Mesi {
        fn rank(m: Mesi) -> u8 {
            match m {
                Mesi::Modified => 3,
                Mesi::Exclusive => 2,
                Mesi::Shared => 1,
                Mesi::Invalid => 0,
            }
        }
        if rank(self) >= rank(other) {
            self
        } else {
            other
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::directory::GRID_HOP_LATENCY;

    fn h2() -> Hierarchy {
        let mut h = Hierarchy::new(2, HierarchyConfig::default());
        h.set_mlp(true); // deterministic under REMAP_NO_MLP in the test env
        h.set_dir(true); // deterministic under REMAP_NO_DIR in the test env
        h
    }

    #[test]
    fn cold_load_goes_to_dram() {
        let mut h = h2();
        let (_, lat) = h.load(0, 0x100, 4, PC_NONE, 0);
        assert_eq!(lat, 2 + 10 + 200);
        assert_eq!(h.bus_stats().dram_accesses, 1);
    }

    #[test]
    fn warm_load_hits_l1() {
        let mut h = h2();
        let (_, t) = h.load(0, 0x100, 4, PC_NONE, 0);
        let (_, lat) = h.load(0, 0x104, 4, PC_NONE, t as u64); // same 32B line
        assert_eq!(lat, 2);
    }

    #[test]
    fn hit_on_in_flight_line_waits_for_the_fill() {
        let mut h = h2();
        h.load(0, 0x100, 4, PC_NONE, 0); // fill lands at 212
                                         // Five cycles in, the line is in the tags but the data is not here
                                         // yet: the secondary access merges with the outstanding fill.
        let (_, lat) = h.load(0, 0x104, 4, PC_NONE, 5);
        assert_eq!(lat, 212 - 5);
        assert_eq!(h.mlp_stats().mshr_merges, 1);
    }

    #[test]
    fn hit_under_miss_is_counted_and_free() {
        let mut h = h2();
        let (_, t) = h.load(0, 0x100, 4, PC_NONE, 0);
        h.load(0, 0x2000, 4, PC_NONE, t as u64); // fill in flight until t+212
                                                 // A hit on an unrelated resident line proceeds at hit latency.
        let (_, lat) = h.load(0, 0x104, 4, PC_NONE, t as u64 + 1);
        assert_eq!(lat, 2);
        assert_eq!(h.mlp_stats().mshr_hits_under_miss, 1);
    }

    #[test]
    fn l2_hit_after_l1_eviction_capacity() {
        let mut h = h2();
        // L1 is 8kB 2-way with 32B lines: 128 sets. Three lines mapping to
        // the same set: stride = 128 * 32 = 4096.
        let mut t = 0u64;
        for a in [0x0u64, 0x1000, 0x2000] {
            t += h.load(0, a, 4, PC_NONE, t).1 as u64; // 0x2000 evicts 0x0 from L1
        }
        let (_, lat) = h.load(0, 0x0, 4, PC_NONE, t);
        assert_eq!(lat, 2 + 10, "L1 miss, L2 hit");
    }

    #[test]
    fn store_then_remote_load_is_c2c() {
        let mut h = h2();
        let t = h.store(0, 0x100, 4, 7, 0) as u64;
        let (v, lat) = h.load(1, 0x100, 4, PC_NONE, t);
        assert_eq!(v, 7);
        assert_eq!(lat, 2 + 10 + 20, "supplied dirty by core 0");
        assert_eq!(h.bus_stats().c2c_transfers, 1);
        // Both ends now Shared.
        h.check_mesi_invariants(&[0x100]).unwrap();
    }

    #[test]
    fn store_to_shared_upgrades_and_invalidates() {
        let mut h = h2();
        let mut t = h.store(0, 0x100, 4, 7, 0) as u64;
        t += h.load(1, 0x100, 4, PC_NONE, t).1 as u64; // both shared now
        let lat = h.store(0, 0x100, 4, 9, t);
        assert_eq!(lat, 2 + 10, "L1 hit + upgrade");
        assert_eq!(h.bus_stats().upgrades, 1);
        t += lat as u64;
        let (v, lat1) = h.load(1, 0x100, 4, PC_NONE, t);
        assert_eq!(v, 9);
        assert!(lat1 > 2, "core 1 was invalidated and must re-fetch");
        h.check_mesi_invariants(&[0x100]).unwrap();
    }

    #[test]
    fn exclusive_store_is_silent() {
        let mut h = h2();
        let t = h.load(0, 0x100, 4, PC_NONE, 0).1 as u64; // fills Exclusive
        let lat = h.store(0, 0x100, 4, 1, t); // E -> M without bus traffic
        assert_eq!(lat, 2);
        assert_eq!(h.bus_stats().upgrades, 0);
    }

    #[test]
    fn amo_add_returns_old_value() {
        let mut h = h2();
        let mut t = h.store(0, 0x40, 4, 10, 0) as u64;
        let (old, lat) = h.amo_add(1, 0x40, 5, t);
        assert_eq!(old, 10);
        t += lat as u64;
        let (v, _) = h.load(0, 0x40, 4, PC_NONE, t);
        assert_eq!(v, 15);
        h.check_mesi_invariants(&[0x40]).unwrap();
    }

    #[test]
    fn inst_fetch_misses_then_hits() {
        let mut h = h2();
        let lat0 = h.inst_fetch(0, 0x4000_0000, 0);
        assert_eq!(lat0, 2 + 10 + 200);
        let lat1 = h.inst_fetch(0, 0x4000_0004, lat0 as u64);
        assert_eq!(lat1, 2);
    }

    #[test]
    fn inst_fetch_next_line_prefetch_hides_the_sequential_miss() {
        let mut h = h2();
        let t = h.inst_fetch(0, 0x4000_0000, 0) as u64; // prefetches 0x4000_0020
        let lat = h.inst_fetch(0, 0x4000_0020, t);
        assert_eq!(lat, 2 + 10, "fill landed with the previous line's");
        let s = h.mlp_stats();
        assert!(s.prefetch_issued >= 1);
        assert_eq!(s.prefetch_useful, 1);
    }

    #[test]
    fn stride_stream_prefetches_after_training() {
        let mut h = h2();
        let mut t = 0u64;
        let mut lats = Vec::new();
        // One load per line (stride 32), same pc: after three misses the
        // RPT is confident and runs ahead of the stream.
        for i in 0..12u64 {
            let (_, lat) = h.load(0, 0x8000 + i * 32, 4, 0x40, t);
            lats.push(lat);
            t += lat as u64;
        }
        let s = h.mlp_stats();
        assert!(s.prefetch_issued >= 4, "stream detected: {s:?}");
        assert!(
            s.prefetch_useful + s.prefetch_late >= 4,
            "prefetches consumed: {s:?}"
        );
        assert!(
            lats[11] < 212,
            "steady-state miss is cheaper than a cold one: {lats:?}"
        );
        assert!(!s.prefetch_accuracy().is_nan());
    }

    #[test]
    fn pointer_chase_never_prefetches() {
        let mut h = h2();
        let mut t = 0u64;
        for a in [0x1000u64, 0x5420, 0x2260, 0x9fa0, 0x30c0, 0x7780] {
            t += h.load(0, a, 8, 0x40, t).1 as u64;
        }
        assert_eq!(h.mlp_stats().prefetch_issued, 0);
    }

    #[test]
    fn load_gate_refuses_only_a_full_file() {
        let mut h = h2();
        // Fill all four L1D MSHRs with distinct-set demand misses at t=0.
        for i in 0..4u64 {
            h.load(0, 0x10000 + i * 32, 4, PC_NONE, 0);
        }
        assert!(
            h.load_ready(0, 0x10000, 0),
            "in-flight line can always merge"
        );
        assert!(h.load_ready(0, 0x10000 + 32, 0), "tag hit is always ready");
        assert!(
            !h.load_ready(0, 0xf00000, 0),
            "untracked full miss needs a register"
        );
        let wake = h.load_wake(0, 0);
        assert!(wake > 0 && wake != u64::MAX);
        assert_eq!(h.next_event(0), Some(wake), "full file publishes its wake");
        assert!(
            h.load_ready(0, 0xf00000, wake),
            "ready again once the earliest fill lands"
        );
        assert_eq!(h.next_event(wake), None);
        // The other core's file is untouched.
        assert!(h.load_ready(1, 0xf00000, 0));
    }

    #[test]
    fn blocking_model_is_always_ready() {
        let mut h = h2();
        h.set_mlp(false);
        for i in 0..8u64 {
            h.load(0, 0x10000 + i * 32, 4, PC_NONE, 0);
        }
        assert!(h.load_ready(0, 0xf00000, 0));
        assert_eq!(h.load_wake(0, 0), u64::MAX);
        assert_eq!(h.next_event(0), None);
        assert_eq!(h.mlp_stats(), MlpStats::default());
    }

    #[test]
    fn no_mlp_latencies_match_the_blocking_model() {
        // The MLP and directory models are timing-only and the blocking
        // broadcast path is untouched: with both disabled, every canonical
        // latency is the reference value even with a stale `now` (the
        // directory would charge bank-port queueing for these overlapped
        // same-bank lookups; the idealized atomic bus does not).
        let mut h = h2();
        h.set_mlp(false);
        h.set_dir(false);
        assert_eq!(h.load(0, 0x100, 4, PC_NONE, 0).1, 212, "cold DRAM");
        assert_eq!(h.load(0, 0x104, 4, PC_NONE, 0).1, 2, "L1 hit");
        assert_eq!(h.load(1, 0x2000, 4, PC_NONE, 0).1, 212);
        assert_eq!(h.store(1, 0x2000, 4, 1, 0), 2, "silent E->M");
        assert_eq!(h.load(0, 0x2000, 4, PC_NONE, 0).1, 32, "c2c transfer");
        assert_eq!(h.mlp_stats(), MlpStats::default());
        assert_eq!(h.dir_stats(), DirStats::default());
    }

    #[test]
    fn uncontended_directory_latencies_match_the_broadcast_model() {
        // A directory lookup is pipelined behind the L1+L2 traversal:
        // without a bank conflict it costs nothing, so properly sequenced
        // accesses see the exact pinned latencies of the reference model.
        let mut h = h2();
        assert!(h.dir_enabled(), "directory is on by default");
        let t = h.store(0, 0x100, 4, 7, 0) as u64;
        assert_eq!(t, 212, "cold store miss");
        let (v, lat) = h.load(1, 0x100, 4, PC_NONE, t);
        assert_eq!((v, lat), (7, 32), "c2c supply through the sharer mask");
        let lat = h.store(0, 0x100, 4, 9, t + lat as u64);
        assert_eq!(lat, 2 + 10, "upgrade through the directory");
        let s = h.dir_stats();
        assert_eq!(s.bank_conflicts, 0);
        assert_eq!(s.conflict_cycles, 0);
        assert!(s.lookups >= 3);
        assert_eq!(s.probes_sent, 2, "one snoop probe + one invalidate");
        h.check_mesi_invariants(&[0x100]).unwrap();
    }

    #[test]
    fn directory_filters_probes_and_matches_broadcast() {
        // The same access stream through the directory and the broadcast
        // walk: identical values, identical cache/bus counters, identical
        // MESI states — the directory only filters who gets probed.
        let ops: Vec<(usize, u64, bool)> = (0..200u64)
            .map(|i| {
                let core = (i % 4) as usize;
                let addr = 0x1000 + (i * 37 % 23) * 32;
                (core, addr, i % 3 == 0)
            })
            .collect();
        let run = |dir: bool| {
            let mut h = Hierarchy::new(4, HierarchyConfig::default());
            h.set_mlp(true);
            h.set_dir(dir);
            let mut t = 0u64;
            let mut vals = Vec::new();
            for (i, &(core, addr, write)) in ops.iter().enumerate() {
                if write {
                    t += h.store(core, addr, 4, i as u64, t) as u64;
                } else {
                    let (v, lat) = h.load(core, addr, 4, PC_NONE, t);
                    vals.push(v);
                    t += lat as u64;
                }
            }
            (h, vals)
        };
        let (hd, vd) = run(true);
        let (hb, vb) = run(false);
        assert_eq!(vd, vb, "loaded values are timing-independent");
        let addrs: Vec<u64> = (0..23u64).map(|k| 0x1000 + k * 32).collect();
        hd.check_mesi_invariants(&addrs).unwrap();
        for c in 0..4 {
            assert_eq!(hd.cache_stats(c), hb.cache_stats(c), "core {c}");
        }
        assert_eq!(hd.bus_stats(), hb.bus_stats());
        let s = hd.dir_stats();
        assert!(s.probes_avoided > 0, "the filter actually filtered: {s:?}");
        assert!(s.probes_sent > 0);
    }

    #[test]
    fn enabling_the_directory_mid_run_reseeds_residency() {
        let mut h = h2();
        h.set_dir(false);
        let t = h.store(0, 0x100, 4, 7, 0) as u64;
        let t = t + h.load(1, 0x100, 4, PC_NONE, t).1 as u64; // both Shared
        h.set_dir(true);
        let s0 = h.dir_stats();
        assert_eq!((s0.lookups, s0.probes_sent), (0, 0), "counters reset");
        assert_eq!(s0.max_sharers, 2, "reseed found both resident copies");
        // The reseeded mask routes the upgrade to exactly core 1.
        let lat = h.store(0, 0x100, 4, 9, t);
        assert_eq!(lat, 2 + 10);
        assert_eq!(h.cores[1].l1d.probe(0x100), Mesi::Invalid);
        assert_eq!(h.dir_stats().probes_sent, 1);
        h.check_mesi_invariants(&[0x100]).unwrap();
    }

    #[test]
    fn directory_bank_conflicts_gate_and_wake_loads() {
        // Two overlapped full misses to the same directory bank fill both
        // ports; a third load to that bank is refused until a port frees,
        // and the wake is published through next_event.
        let mut h = h2();
        h.set_mlp(false); // isolate the directory gate from the MSHR gate
        assert!(h.load_ready(0, 0x1000, 0));
        h.load(0, 0x1000, 4, PC_NONE, 0); // bank 0, port 0 (t_req 12)
        h.load(1, 0x2000, 4, PC_NONE, 0); // bank 0, port 1 (t_req 12)
        assert!(!h.load_ready(0, 0x4000, 12), "bank 0 has no free port");
        assert!(h.load_blocked_by_dir(0, 0x4000, 12));
        assert!(h.load_ready(0, 0x4020, 12), "bank 1 is free");
        let wake = h.load_wake(0, 12);
        assert_eq!(h.next_event(12), Some(wake));
        assert!(h.load_ready(0, 0x4000, wake));
        assert!(!h.load_blocked_by_dir(0, 0x4000, wake));
        assert_eq!(h.dir_stats().lookups, 2);
    }

    #[test]
    fn grid_hops_extend_c2c_transfers() {
        // 36 cores = 9 clusters on a 3x3 grid: a transfer from cluster 0
        // to cluster 8 is 4 hops, 3 of them charged beyond the baseline.
        let mut h = Hierarchy::new(36, HierarchyConfig::default());
        h.set_mlp(false);
        h.set_dir(true);
        let t = h.store(0, 0x100, 4, 7, 0) as u64;
        let (v, lat) = h.load(35, 0x100, 4, PC_NONE, t);
        assert_eq!(v, 7);
        assert_eq!(lat, 32 + 3 * GRID_HOP_LATENCY as u32);
        assert_eq!(h.dir_stats().hop_cycles, 3 * GRID_HOP_LATENCY);
        // Same-cluster transfers stay at the baseline.
        let (_, lat) = h.load(1, 0x100, 4, PC_NONE, t + lat as u64);
        assert_eq!(lat, 32, "nearest sharer supplies without hop charges");
    }

    #[test]
    fn mlp_env_gate_parses_like_no_skip() {
        assert!(mlp_enabled_from_env(None));
        assert!(mlp_enabled_from_env(Some("")));
        assert!(!mlp_enabled_from_env(Some("1")));
        assert!(!mlp_enabled_from_env(Some("0")), "any non-empty disables");
    }

    #[test]
    fn write_miss_invalidates_remote_clean_copy() {
        let mut h = h2();
        let t = h.load(0, 0x200, 4, PC_NONE, 0).1 as u64; // core 0 Exclusive
        h.store(1, 0x200, 4, 3, t); // core 1 write miss
        assert_eq!(h.cores[0].l1d.probe(0x200), Mesi::Invalid);
        h.check_mesi_invariants(&[0x200]).unwrap();
    }

    #[test]
    fn negative_amo_delta() {
        let mut h = h2();
        let t = h.store(0, 0x44, 4, 10, 0) as u64;
        let (old, lat) = h.amo_add(0, 0x44, -4, t);
        assert_eq!(old, 10);
        assert_eq!(h.load(0, 0x44, 4, PC_NONE, t + lat as u64).0, 6);
    }

    #[test]
    fn parity_protected_fill_scrubs_instead_of_corrupting() {
        use remap_fault::{SiteCfg, PPM_SCALE};
        let mut h = h2();
        h.mem_mut().write_u64(0x100, 0xdead_beef_cafe_f00d);
        h.set_fault(Some(CacheFault::new(
            9,
            SiteCfg::windowed(PPM_SCALE as u32, 0, 1),
            true,
            30,
        )));
        let (v, lat) = h.load(0, 0x100, 8, PC_NONE, 0);
        assert_eq!(v, 0xdead_beef_cafe_f00d, "scrubbed fill stays correct");
        assert_eq!(lat, 2 + 10 + 200 + 30, "detected fill pays the scrub");
        let c = h.fault_counters();
        assert_eq!(
            (c.injected, c.detected, c.recovered, c.silent),
            (1, 1, 1, 0)
        );
        // Subsequent hits are outside the window: normal latency.
        assert_eq!(h.load(0, 0x100, 8, PC_NONE, lat as u64).1, 2);
    }

    #[test]
    fn scrub_extends_the_outstanding_fill_for_merged_accesses() {
        use remap_fault::{SiteCfg, PPM_SCALE};
        let mut h = h2();
        h.set_fault(Some(CacheFault::new(
            9,
            SiteCfg::windowed(PPM_SCALE as u32, 0, 1),
            true,
            30,
        )));
        h.load(0, 0x100, 8, PC_NONE, 0); // fill extended to 242 by the scrub
        let (_, lat) = h.load(0, 0x108, 8, PC_NONE, 10);
        assert_eq!(lat, 242 - 10, "merged access waits out the re-fetch too");
    }

    #[test]
    fn unprotected_fill_flips_one_memory_bit() {
        use remap_fault::{SiteCfg, PPM_SCALE};
        let mut h = h2();
        h.mem_mut().write_u64(0x100, 0xdead_beef_cafe_f00d);
        h.set_fault(Some(CacheFault::new(
            9,
            SiteCfg::windowed(PPM_SCALE as u32, 0, 1),
            false,
            30,
        )));
        let (v, lat) = h.load(0, 0x100, 8, PC_NONE, 0);
        assert_eq!(
            (v ^ 0xdead_beef_cafe_f00d).count_ones(),
            1,
            "exactly one flipped bit reaches the consumer"
        );
        assert_eq!(lat, 2 + 10 + 200, "silent corruption costs nothing");
        let c = h.fault_counters();
        assert_eq!(
            (c.injected, c.detected, c.recovered, c.silent),
            (1, 0, 0, 1)
        );
    }

    #[test]
    fn cache_fault_stream_is_deterministic() {
        use remap_fault::SiteCfg;
        let run = |mlp: bool| {
            let mut h = h2();
            h.set_mlp(mlp);
            h.set_fault(Some(CacheFault::new(5, SiteCfg::rate(250_000), false, 30)));
            for i in 0..64u64 {
                h.mem_mut().write_u64(0x1000 + i * 8, i);
            }
            let mut t = 0u64;
            let vals: Vec<u64> = (0..64u64)
                .map(|i| {
                    let (v, lat) = h.load(i as usize % 2, 0x1000 + i * 8, 8, 0x10, t);
                    t += lat as u64;
                    v
                })
                .collect();
            (vals, h.fault_counters())
        };
        let (a, ca) = run(true);
        let (b, cb) = run(true);
        assert_eq!(a, b);
        assert_eq!(ca, cb);
        assert!(ca.injected > 0);
        // The fault stream is event-indexed on demand full misses, which
        // are identical with MLP on or off (the functional walk decides).
        let (c, cc) = run(false);
        assert_eq!(a, c);
        assert_eq!(ca, cc);
    }
}

//! Set-associative cache tag array with MESI state and LRU replacement.

use std::fmt;

/// MESI coherence state of a cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mesi {
    /// Modified: this cache holds the only, dirty copy.
    Modified,
    /// Exclusive: this cache holds the only, clean copy.
    Exclusive,
    /// Shared: possibly other caches also hold clean copies.
    Shared,
    /// Invalid.
    Invalid,
}

impl fmt::Display for Mesi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Mesi::Modified => 'M',
            Mesi::Exclusive => 'E',
            Mesi::Shared => 'S',
            Mesi::Invalid => 'I',
        };
        write!(f, "{c}")
    }
}

/// Geometry and latency of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Access latency in core cycles.
    pub hit_latency: u32,
}

impl CacheConfig {
    /// The paper's L1 configuration: 8 kB, 2-way, 2-cycle access, 32 B lines.
    pub fn l1() -> CacheConfig {
        CacheConfig {
            size_bytes: 8 * 1024,
            ways: 2,
            line_bytes: 32,
            hit_latency: 2,
        }
    }

    /// The paper's L2 configuration: 1 MB per core, 10-cycle access.
    /// We use 8-way associativity and the same 32 B lines as the L1 so that
    /// L1 ⊆ L2 inclusion is a one-to-one line mapping.
    pub fn l2() -> CacheConfig {
        CacheConfig {
            size_bytes: 1024 * 1024,
            ways: 8,
            line_bytes: 32,
            hit_latency: 10,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.ways * self.line_bytes)
    }
}

/// Hit/miss and coherence activity counters, used by the power model.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines written back on eviction or snoop.
    pub writebacks: u64,
    /// Lines invalidated by remote stores.
    pub invalidations: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }
}

/// A cache tag array (data lives in [`FlatMem`](crate::FlatMem)).
///
/// The cache tracks MESI state per line and uses true LRU within a set.
/// Protocol decisions (what state to fill with, whom to invalidate) are made
/// by the owning [`Hierarchy`](crate::Hierarchy); the cache only provides
/// mechanical probe/insert/invalidate operations.
///
/// Storage is data-oriented: tags, states, and LRU stamps live in three
/// parallel flat arrays indexed `set * ways + way` (empty ways carry
/// `Mesi::Invalid`), and each set remembers its last-hit way (`mru_way`).
/// Every lookup goes through [`find_way`](Cache::find_way), which checks
/// the predicted way before falling back to the linear scan — on hit-heavy
/// traffic the common case touches a single tag. Way prediction is a pure
/// search shortcut: tags of valid lines are unique within a set, so the
/// predicted-way probe and the linear scan always agree.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    num_sets: usize,
    /// `log2(line_bytes)` — geometry is power-of-two, so indexing is all
    /// shifts and masks instead of integer division.
    line_shift: u32,
    /// `log2(line_bytes * num_sets)`: shift that strips line offset and
    /// set index off an address, leaving the tag.
    tag_shift: u32,
    tags: Vec<u64>,
    states: Vec<Mesi>,
    lru: Vec<u64>,
    /// Last way hit (or filled) per set; purely a prediction hint.
    mru_way: Vec<u32>,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets or non-power-of-two
    /// sets/line size).
    pub fn new(cfg: CacheConfig) -> Cache {
        let sets = cfg.sets();
        assert!(sets > 0, "cache must have at least one set");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let line_shift = cfg.line_bytes.trailing_zeros();
        Cache {
            num_sets: sets,
            line_shift,
            tag_shift: line_shift + sets.trailing_zeros(),
            tags: vec![0; sets * cfg.ways],
            states: vec![Mesi::Invalid; sets * cfg.ways],
            lru: vec![0; sets * cfg.ways],
            mru_way: vec![0; sets],
            cfg,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Activity counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    #[inline]
    fn set_index(&self, addr: u64) -> usize {
        ((addr >> self.line_shift) as usize) & (self.num_sets - 1)
    }

    #[inline]
    fn tag(&self, addr: u64) -> u64 {
        addr >> self.tag_shift
    }

    /// Line-aligned base address for `addr`.
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.cfg.line_bytes as u64 - 1)
    }

    /// Locates the way holding `tag` in set `si`, if resident. Checks the
    /// set's MRU way first (way prediction), then scans linearly. This is
    /// the single lookup used by every probe/access/set_state/invalidate/
    /// insert path.
    #[inline]
    fn find_way(&self, si: usize, tag: u64) -> Option<usize> {
        let ways = self.cfg.ways;
        let base = si * ways;
        let pred = self.mru_way[si] as usize;
        debug_assert!(pred < ways);
        if self.states[base + pred] != Mesi::Invalid && self.tags[base + pred] == tag {
            return Some(pred);
        }
        (0..ways).find(|&w| {
            w != pred && self.states[base + w] != Mesi::Invalid && self.tags[base + w] == tag
        })
    }

    /// Returns the MESI state of the line containing `addr` without touching
    /// LRU or statistics (used for snooping).
    #[inline]
    pub fn probe(&self, addr: u64) -> Mesi {
        let si = self.set_index(addr);
        match self.find_way(si, self.tag(addr)) {
            Some(w) => self.states[si * self.cfg.ways + w],
            None => Mesi::Invalid,
        }
    }

    /// Performs a demand access: bumps LRU and hit/miss counters. Returns the
    /// state if the line is present (hit), else `None` (miss).
    #[inline]
    pub fn access(&mut self, addr: u64) -> Option<Mesi> {
        self.tick += 1;
        let si = self.set_index(addr);
        match self.find_way(si, self.tag(addr)) {
            Some(w) => {
                let i = si * self.cfg.ways + w;
                self.lru[i] = self.tick;
                self.mru_way[si] = w as u32;
                self.stats.hits += 1;
                Some(self.states[i])
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Changes the state of a resident line; no-op if not resident.
    #[inline]
    pub fn set_state(&mut self, addr: u64, state: Mesi) {
        let si = self.set_index(addr);
        if let Some(w) = self.find_way(si, self.tag(addr)) {
            self.states[si * self.cfg.ways + w] = state;
            self.mru_way[si] = w as u32;
        }
    }

    /// Invalidates the line containing `addr` (remote store snoop). Returns
    /// the previous state, counting a writeback if it was Modified.
    pub fn invalidate(&mut self, addr: u64) -> Mesi {
        let si = self.set_index(addr);
        if let Some(w) = self.find_way(si, self.tag(addr)) {
            let i = si * self.cfg.ways + w;
            let prev = self.states[i];
            self.tags[i] = 0;
            self.states[i] = Mesi::Invalid;
            self.lru[i] = 0;
            self.stats.invalidations += 1;
            if prev == Mesi::Modified {
                self.stats.writebacks += 1;
            }
            prev
        } else {
            Mesi::Invalid
        }
    }

    /// Inserts the line containing `addr` with the given state, evicting the
    /// LRU line of the set if full. Returns the evicted line's base address
    /// and state, if any (the hierarchy uses this to maintain inclusion and
    /// count writebacks).
    pub fn insert(&mut self, addr: u64, state: Mesi) -> Option<(u64, Mesi)> {
        self.tick += 1;
        let si = self.set_index(addr);
        let tag = self.tag(addr);
        let base = si * self.cfg.ways;
        if let Some(w) = self.find_way(si, tag) {
            // Already resident (e.g. refill racing an upgrade): just update.
            self.states[base + w] = state;
            self.lru[base + w] = self.tick;
            self.mru_way[si] = w as u32;
            return None;
        }
        // Prefer an empty way; otherwise evict the LRU of the set (LRU stamps
        // are unique — `tick` is monotonic — so the victim is unambiguous).
        let mut evicted = None;
        let set_states = &self.states[base..base + self.cfg.ways];
        let slot = match set_states.iter().position(|&s| s == Mesi::Invalid) {
            Some(w) => w,
            None => {
                let mut w = 0;
                for cand in 1..self.cfg.ways {
                    if self.lru[base + cand] < self.lru[base + w] {
                        w = cand;
                    }
                }
                let victim_state = self.states[base + w];
                if victim_state == Mesi::Modified {
                    self.stats.writebacks += 1;
                }
                let victim_base =
                    (self.tags[base + w] << self.tag_shift) | ((si as u64) << self.line_shift);
                evicted = Some((victim_base, victim_state));
                w
            }
        };
        self.tags[base + slot] = tag;
        self.states[base + slot] = state;
        self.lru[base + slot] = self.tick;
        self.mru_way[si] = slot as u32;
        evicted
    }

    /// Number of resident lines (for tests).
    pub fn resident_lines(&self) -> usize {
        self.states.iter().filter(|&&s| s != Mesi::Invalid).count()
    }

    /// Serializes the dynamic tag-array state (checkpoint support).
    /// Geometry is not written — it is part of the config fingerprint.
    pub fn save_state(&self, w: &mut remap_snap::Writer) {
        w.put_len(self.tags.len());
        for &t in &self.tags {
            w.put_u64(t);
        }
        for &s in &self.states {
            w.put_u8(match s {
                Mesi::Modified => 0,
                Mesi::Exclusive => 1,
                Mesi::Shared => 2,
                Mesi::Invalid => 3,
            });
        }
        for &l in &self.lru {
            w.put_u64(l);
        }
        w.put_len(self.mru_way.len());
        for &m in &self.mru_way {
            w.put_u32(m);
        }
        w.put_u64(self.tick);
        w.put_u64(self.stats.hits);
        w.put_u64(self.stats.misses);
        w.put_u64(self.stats.writebacks);
        w.put_u64(self.stats.invalidations);
    }

    /// Restores state written by [`Cache::save_state`] onto a cache of
    /// identical geometry.
    pub fn load_state(&mut self, r: &mut remap_snap::Reader) -> Result<(), remap_snap::SnapError> {
        use remap_snap::SnapError;
        r.get_exact_len(self.tags.len())?;
        for t in &mut self.tags {
            *t = r.get_u64()?;
        }
        for s in &mut self.states {
            *s = match r.get_u8()? {
                0 => Mesi::Modified,
                1 => Mesi::Exclusive,
                2 => Mesi::Shared,
                3 => Mesi::Invalid,
                b => return Err(SnapError::Corrupt(format!("bad MESI byte {b}"))),
            };
        }
        for l in &mut self.lru {
            *l = r.get_u64()?;
        }
        r.get_exact_len(self.mru_way.len())?;
        for m in &mut self.mru_way {
            let v = r.get_u32()?;
            if v as usize >= self.cfg.ways {
                return Err(SnapError::Corrupt(format!("mru_way {v} out of range")));
            }
            *m = v;
        }
        self.tick = r.get_u64()?;
        self.stats.hits = r.get_u64()?;
        self.stats.misses = r.get_u64()?;
        self.stats.writebacks = r.get_u64()?;
        self.stats.invalidations = r.get_u64()?;
        Ok(())
    }

    /// Line-aligned base address of every resident line (used to reseed
    /// the coherence directory when it is enabled mid-run).
    pub fn resident_line_addrs(&self) -> impl Iterator<Item = u64> + '_ {
        let ways = self.cfg.ways;
        self.states.iter().enumerate().filter_map(move |(i, &st)| {
            if st == Mesi::Invalid {
                return None;
            }
            let si = (i / ways) as u64;
            Some((self.tags[i] << self.tag_shift) | (si << self.line_shift))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets, 2 ways, 16-byte lines.
        Cache::new(CacheConfig {
            size_bytes: 64,
            ways: 2,
            line_bytes: 16,
            hit_latency: 1,
        })
    }

    #[test]
    fn geometry() {
        assert_eq!(CacheConfig::l1().sets(), 128);
        assert_eq!(CacheConfig::l2().sets(), 4096);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert_eq!(c.access(0x100), None);
        c.insert(0x100, Mesi::Exclusive);
        assert_eq!(c.access(0x100), Some(Mesi::Exclusive));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn same_line_different_bytes_hit() {
        let mut c = tiny();
        c.insert(0x100, Mesi::Shared);
        assert_eq!(c.access(0x10f), Some(Mesi::Shared));
        assert_eq!(c.access(0x110), None, "next line misses");
    }

    #[test]
    fn lru_eviction() {
        let mut c = tiny();
        // All map to set 0: line addresses multiples of 32 (2 sets * 16B).
        c.insert(0x000, Mesi::Exclusive);
        c.insert(0x020, Mesi::Exclusive);
        c.access(0x000); // make 0x000 most recent
        let ev = c.insert(0x040, Mesi::Exclusive).expect("evicts");
        assert_eq!(ev.0, 0x020, "LRU line evicted");
        assert_eq!(c.probe(0x000), Mesi::Exclusive);
        assert_eq!(c.probe(0x020), Mesi::Invalid);
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = tiny();
        c.insert(0x000, Mesi::Modified);
        c.insert(0x020, Mesi::Exclusive);
        c.insert(0x040, Mesi::Exclusive); // evicts 0x000 (LRU)
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn invalidate_returns_previous_state() {
        let mut c = tiny();
        c.insert(0x100, Mesi::Modified);
        assert_eq!(c.invalidate(0x100), Mesi::Modified);
        assert_eq!(c.invalidate(0x100), Mesi::Invalid);
        assert_eq!(c.stats().invalidations, 1);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn reinsert_updates_state_without_eviction() {
        let mut c = tiny();
        c.insert(0x100, Mesi::Shared);
        assert_eq!(c.insert(0x100, Mesi::Modified), None);
        assert_eq!(c.probe(0x100), Mesi::Modified);
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn way_prediction_tracks_alternating_lines() {
        let mut c = tiny();
        // Two lines in the same set: alternating hits flip the MRU way and
        // must keep hitting (the prediction is a shortcut, not a filter).
        c.insert(0x000, Mesi::Exclusive);
        c.insert(0x020, Mesi::Shared);
        for _ in 0..8 {
            assert_eq!(c.access(0x000), Some(Mesi::Exclusive));
            assert_eq!(c.access(0x020), Some(Mesi::Shared));
        }
        assert_eq!(c.stats().hits, 16);
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn invalidated_mru_way_is_not_a_false_hit() {
        let mut c = tiny();
        c.insert(0x000, Mesi::Exclusive);
        assert_eq!(c.access(0x000), Some(Mesi::Exclusive));
        c.invalidate(0x000);
        // The MRU way still points at the cleared slot; a fresh line with a
        // different tag must not hit through the stale prediction.
        assert_eq!(c.access(0x040), None);
    }

    #[test]
    fn line_addr_masks_low_bits() {
        let c = tiny();
        assert_eq!(c.line_addr(0x10f), 0x100);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 48,
            ways: 1,
            line_bytes: 16,
            hit_latency: 1,
        });
    }
}

//! Set-associative cache tag array with MESI state and LRU replacement.

use std::fmt;

/// MESI coherence state of a cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mesi {
    /// Modified: this cache holds the only, dirty copy.
    Modified,
    /// Exclusive: this cache holds the only, clean copy.
    Exclusive,
    /// Shared: possibly other caches also hold clean copies.
    Shared,
    /// Invalid.
    Invalid,
}

impl fmt::Display for Mesi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Mesi::Modified => 'M',
            Mesi::Exclusive => 'E',
            Mesi::Shared => 'S',
            Mesi::Invalid => 'I',
        };
        write!(f, "{c}")
    }
}

/// Geometry and latency of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Access latency in core cycles.
    pub hit_latency: u32,
}

impl CacheConfig {
    /// The paper's L1 configuration: 8 kB, 2-way, 2-cycle access, 32 B lines.
    pub fn l1() -> CacheConfig {
        CacheConfig {
            size_bytes: 8 * 1024,
            ways: 2,
            line_bytes: 32,
            hit_latency: 2,
        }
    }

    /// The paper's L2 configuration: 1 MB per core, 10-cycle access.
    /// We use 8-way associativity and the same 32 B lines as the L1 so that
    /// L1 ⊆ L2 inclusion is a one-to-one line mapping.
    pub fn l2() -> CacheConfig {
        CacheConfig {
            size_bytes: 1024 * 1024,
            ways: 8,
            line_bytes: 32,
            hit_latency: 10,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.ways * self.line_bytes)
    }
}

/// Hit/miss and coherence activity counters, used by the power model.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines written back on eviction or snoop.
    pub writebacks: u64,
    /// Lines invalidated by remote stores.
    pub invalidations: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    state: Mesi,
    lru: u64,
}

const EMPTY_LINE: Line = Line {
    tag: 0,
    state: Mesi::Invalid,
    lru: 0,
};

/// A cache tag array (data lives in [`FlatMem`](crate::FlatMem)).
///
/// The cache tracks MESI state per line and uses true LRU within a set.
/// Protocol decisions (what state to fill with, whom to invalidate) are made
/// by the owning [`Hierarchy`](crate::Hierarchy); the cache only provides
/// mechanical probe/insert/invalidate operations.
///
/// Storage is one contiguous `Vec<Line>` indexed `set * ways + way`
/// (empty ways carry `Mesi::Invalid`), so a set lookup walks a flat slice
/// instead of chasing a per-set `Vec` pointer.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    num_sets: usize,
    lines: Vec<Line>,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets or non-power-of-two
    /// sets/line size).
    pub fn new(cfg: CacheConfig) -> Cache {
        let sets = cfg.sets();
        assert!(sets > 0, "cache must have at least one set");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        Cache {
            num_sets: sets,
            lines: vec![EMPTY_LINE; sets * cfg.ways],
            cfg,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Activity counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn set_index(&self, addr: u64) -> usize {
        ((addr as usize) / self.cfg.line_bytes) & (self.num_sets - 1)
    }

    fn tag(&self, addr: u64) -> u64 {
        addr / (self.cfg.line_bytes as u64) / (self.num_sets as u64)
    }

    fn set(&self, si: usize) -> &[Line] {
        &self.lines[si * self.cfg.ways..(si + 1) * self.cfg.ways]
    }

    fn set_mut(&mut self, si: usize) -> &mut [Line] {
        &mut self.lines[si * self.cfg.ways..(si + 1) * self.cfg.ways]
    }

    /// Line-aligned base address for `addr`.
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.cfg.line_bytes as u64 - 1)
    }

    /// Returns the MESI state of the line containing `addr` without touching
    /// LRU or statistics (used for snooping).
    pub fn probe(&self, addr: u64) -> Mesi {
        let si = self.set_index(addr);
        let tag = self.tag(addr);
        self.set(si)
            .iter()
            .find(|l| l.state != Mesi::Invalid && l.tag == tag)
            .map(|l| l.state)
            .unwrap_or(Mesi::Invalid)
    }

    /// Performs a demand access: bumps LRU and hit/miss counters. Returns the
    /// state if the line is present (hit), else `None` (miss).
    pub fn access(&mut self, addr: u64) -> Option<Mesi> {
        self.tick += 1;
        let si = self.set_index(addr);
        let tag = self.tag(addr);
        let tick = self.tick;
        let hit = self
            .set_mut(si)
            .iter_mut()
            .find(|l| l.state != Mesi::Invalid && l.tag == tag)
            .map(|l| {
                l.lru = tick;
                l.state
            });
        match hit {
            Some(state) => {
                self.stats.hits += 1;
                Some(state)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Changes the state of a resident line; no-op if not resident.
    pub fn set_state(&mut self, addr: u64, state: Mesi) {
        let si = self.set_index(addr);
        let tag = self.tag(addr);
        if let Some(l) = self
            .set_mut(si)
            .iter_mut()
            .find(|l| l.state != Mesi::Invalid && l.tag == tag)
        {
            l.state = state;
        }
    }

    /// Invalidates the line containing `addr` (remote store snoop). Returns
    /// the previous state, counting a writeback if it was Modified.
    pub fn invalidate(&mut self, addr: u64) -> Mesi {
        let si = self.set_index(addr);
        let tag = self.tag(addr);
        if let Some(l) = self
            .set_mut(si)
            .iter_mut()
            .find(|l| l.state != Mesi::Invalid && l.tag == tag)
        {
            let prev = l.state;
            *l = EMPTY_LINE;
            self.stats.invalidations += 1;
            if prev == Mesi::Modified {
                self.stats.writebacks += 1;
            }
            prev
        } else {
            Mesi::Invalid
        }
    }

    /// Inserts the line containing `addr` with the given state, evicting the
    /// LRU line of the set if full. Returns the evicted line's base address
    /// and state, if any (the hierarchy uses this to maintain inclusion and
    /// count writebacks).
    pub fn insert(&mut self, addr: u64, state: Mesi) -> Option<(u64, Mesi)> {
        self.tick += 1;
        let si = self.set_index(addr);
        let tag = self.tag(addr);
        let tick = self.tick;
        let num_sets = self.num_sets as u64;
        let line_bytes = self.cfg.line_bytes as u64;
        if let Some(l) = self
            .set_mut(si)
            .iter_mut()
            .find(|l| l.state != Mesi::Invalid && l.tag == tag)
        {
            // Already resident (e.g. refill racing an upgrade): just update.
            l.state = state;
            l.lru = tick;
            return None;
        }
        // Prefer an empty way; otherwise evict the LRU of the set (LRU stamps
        // are unique — `tick` is monotonic — so the victim is unambiguous).
        let mut evicted = None;
        let slot = match self.set(si).iter().position(|l| l.state == Mesi::Invalid) {
            Some(w) => w,
            None => {
                let w = self
                    .set(si)
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.lru)
                    .map(|(i, _)| i)
                    .expect("set is non-empty");
                let line = self.set(si)[w];
                if line.state == Mesi::Modified {
                    self.stats.writebacks += 1;
                }
                let base = (line.tag * num_sets + si as u64) * line_bytes;
                evicted = Some((base, line.state));
                w
            }
        };
        self.set_mut(si)[slot] = Line {
            tag,
            state,
            lru: tick,
        };
        evicted
    }

    /// Number of resident lines (for tests).
    pub fn resident_lines(&self) -> usize {
        self.lines
            .iter()
            .filter(|l| l.state != Mesi::Invalid)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets, 2 ways, 16-byte lines.
        Cache::new(CacheConfig {
            size_bytes: 64,
            ways: 2,
            line_bytes: 16,
            hit_latency: 1,
        })
    }

    #[test]
    fn geometry() {
        assert_eq!(CacheConfig::l1().sets(), 128);
        assert_eq!(CacheConfig::l2().sets(), 4096);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert_eq!(c.access(0x100), None);
        c.insert(0x100, Mesi::Exclusive);
        assert_eq!(c.access(0x100), Some(Mesi::Exclusive));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn same_line_different_bytes_hit() {
        let mut c = tiny();
        c.insert(0x100, Mesi::Shared);
        assert_eq!(c.access(0x10f), Some(Mesi::Shared));
        assert_eq!(c.access(0x110), None, "next line misses");
    }

    #[test]
    fn lru_eviction() {
        let mut c = tiny();
        // All map to set 0: line addresses multiples of 32 (2 sets * 16B).
        c.insert(0x000, Mesi::Exclusive);
        c.insert(0x020, Mesi::Exclusive);
        c.access(0x000); // make 0x000 most recent
        let ev = c.insert(0x040, Mesi::Exclusive).expect("evicts");
        assert_eq!(ev.0, 0x020, "LRU line evicted");
        assert_eq!(c.probe(0x000), Mesi::Exclusive);
        assert_eq!(c.probe(0x020), Mesi::Invalid);
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = tiny();
        c.insert(0x000, Mesi::Modified);
        c.insert(0x020, Mesi::Exclusive);
        c.insert(0x040, Mesi::Exclusive); // evicts 0x000 (LRU)
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn invalidate_returns_previous_state() {
        let mut c = tiny();
        c.insert(0x100, Mesi::Modified);
        assert_eq!(c.invalidate(0x100), Mesi::Modified);
        assert_eq!(c.invalidate(0x100), Mesi::Invalid);
        assert_eq!(c.stats().invalidations, 1);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn reinsert_updates_state_without_eviction() {
        let mut c = tiny();
        c.insert(0x100, Mesi::Shared);
        assert_eq!(c.insert(0x100, Mesi::Modified), None);
        assert_eq!(c.probe(0x100), Mesi::Modified);
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn line_addr_masks_low_bits() {
        let c = tiny();
        assert_eq!(c.line_addr(0x10f), 0x100);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 48,
            ways: 1,
            line_bytes: 16,
            hit_latency: 1,
        });
    }
}

//! Directory-based coherence filter over the private-L2 line space.
//!
//! The broadcast reference model walks *every* remote core on each full
//! miss (`Hierarchy::snoop_remotes`) — O(cores) per miss both
//! architecturally and in simulator wall-time. The directory replaces the
//! walk with a precise probe filter: one compact sharer bitmask per line
//! currently resident in any private L2, so a miss probes only the actual
//! sharers (usually zero or one). Entries are line-interleaved across
//! [`DIR_BANKS`] banks with [`DIR_PORTS`] ports each and a
//! [`DIR_BANK_BUSY`] occupancy window, the same FCFS bank-conflict shape
//! as the memory controller.
//!
//! Like the MLP machinery, the directory is *timing-plus-routing* state
//! layered over the same functional MESI walk: a sharer bit is set exactly
//! when the line is resident in that core's private L2 (L1D ⊆ L2
//! inclusion makes the L2 tag authoritative), so probing only masked
//! cores touches precisely the caches the broadcast walk would have
//! changed. `REMAP_NO_DIR=1` or `Hierarchy::set_dir(false)` restore the
//! broadcast reference model.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Line-interleaved directory banks.
pub const DIR_BANKS: usize = 8;

/// Lookup ports per bank: two same-bank transactions overlap; a third
/// queues FCFS behind the earliest-free port.
pub const DIR_PORTS: usize = 2;

/// Cycles one lookup occupies a bank port. Uncontended lookups are
/// pipelined behind the L1+L2 traversal and cost nothing; only the queue
/// delay of a port conflict is charged.
pub const DIR_BANK_BUSY: u64 = 4;

/// Per-hop latency of the inter-cluster grid, charged on cache-to-cache
/// transfers beyond the first hop (the baseline `c2c_latency` covers one
/// hop, preserving all single- and quad-cluster timing).
pub const GRID_HOP_LATENCY: u64 = 4;

/// Cores per cluster tile of the grid (the paper's four-core cluster).
const CLUSTER_CORES: usize = 4;

/// Cluster count up to which the interconnect is the paper's flat quad
/// arrangement: no hop charges, identical to the pre-grid timing.
const QUAD_CLUSTERS: usize = 4;

/// Whether directory modeling is enabled given the `REMAP_NO_DIR` value
/// (mirrors `REMAP_NO_MLP`: any non-empty value disables).
pub fn dir_enabled_from_env(v: Option<&str>) -> bool {
    !matches!(v, Some(s) if !s.is_empty())
}

/// Directory activity counters, surfaced in `RunReport`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DirStats {
    /// Directory lookups performed (full misses and upgrades).
    pub lookups: u64,
    /// Remote-core probes actually sent (sharer-mask bits walked).
    pub probes_sent: u64,
    /// Probes the broadcast model would have sent but the sharer mask
    /// filtered out.
    pub probes_avoided: u64,
    /// Lookups that queued behind a busy bank port.
    pub bank_conflicts: u64,
    /// Total cycles lost to bank-port queueing.
    pub conflict_cycles: u64,
    /// Sharer bits dropped because the owning L2 evicted the line
    /// (inclusive back-invalidation).
    pub back_invalidations: u64,
    /// Largest sharer set ever recorded for one line.
    pub max_sharers: u32,
    /// Extra cycles charged for cache-to-cache hops beyond the first.
    pub hop_cycles: u64,
}

/// Multiply-xor line hasher: one 64-bit multiply and a shift, no
/// per-byte loop on the hot `write_u64` path.
#[derive(Default)]
struct LineHasher {
    h: u64,
}

impl Hasher for LineHasher {
    fn finish(&self) -> u64 {
        self.h
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.h = (self.h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        let x = v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.h = x ^ (x >> 29);
    }
}

/// The banked sharer directory. Tracks, per line address, the bitmask of
/// cores whose private L2 holds the line (bounding the core count at 64),
/// plus per-bank port busy-until times for conflict modeling.
#[derive(Debug, Clone)]
pub struct Directory {
    line_shift: u32,
    clusters: usize,
    side: usize,
    sharers: HashMap<u64, u64, BuildHasherDefault<LineHasher>>,
    ports: [[u64; DIR_PORTS]; DIR_BANKS],
    stats: DirStats,
}

impl Directory {
    /// A directory for `n_cores` cores with `line_bytes`-byte lines,
    /// pre-sized for `lines_capacity` simultaneously resident lines so the
    /// hot loop never reallocates.
    ///
    /// `n_cores` must be at most 64 (one bitmask word); `Hierarchy::new`
    /// falls back to the broadcast model beyond that.
    pub fn new(n_cores: usize, line_bytes: usize, lines_capacity: usize) -> Directory {
        debug_assert!(n_cores <= 64, "sharer mask is one u64");
        let clusters = n_cores.div_ceil(CLUSTER_CORES);
        let mut side = 1usize;
        while side * side < clusters {
            side += 1;
        }
        Directory {
            line_shift: line_bytes.trailing_zeros(),
            clusters,
            side,
            sharers: HashMap::with_capacity_and_hasher(lines_capacity, Default::default()),
            ports: [[0; DIR_PORTS]; DIR_BANKS],
            stats: DirStats::default(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> DirStats {
        self.stats
    }

    /// Grid side length (`ceil(sqrt(clusters))`).
    pub fn side(&self) -> usize {
        self.side
    }

    #[inline]
    fn line(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    #[inline]
    fn bank(line: u64) -> usize {
        (line % DIR_BANKS as u64) as usize
    }

    /// Records that `core`'s private L2 now holds the line of `addr`.
    pub fn add_sharer(&mut self, addr: u64, core: usize) {
        let line = self.line(addr);
        let mask = self.sharers.entry(line).or_insert(0);
        *mask |= 1u64 << core;
        let n = mask.count_ones();
        if n > self.stats.max_sharers {
            self.stats.max_sharers = n;
        }
    }

    /// Drops `core`'s sharer bit for the line of `addr` (invalidation).
    pub fn remove_sharer(&mut self, addr: u64, core: usize) {
        let line = self.line(addr);
        if let Some(mask) = self.sharers.get_mut(&line) {
            *mask &= !(1u64 << core);
            if *mask == 0 {
                self.sharers.remove(&line);
            }
        }
    }

    /// Drops `core`'s sharer bit because its L2 evicted the line
    /// (inclusive back-invalidation; counted separately).
    pub fn back_invalidate(&mut self, addr: u64, core: usize) {
        self.stats.back_invalidations += 1;
        self.remove_sharer(addr, core);
    }

    /// Current sharer mask for the line of `addr`.
    pub fn sharers(&self, addr: u64) -> u64 {
        self.sharers.get(&self.line(addr)).copied().unwrap_or(0)
    }

    /// Number of tracked lines (sharer entries currently non-empty).
    pub fn tracked_lines(&self) -> usize {
        self.sharers.len()
    }

    /// Pure occupancy probe: whether the bank serving `addr` has a free
    /// port at `now`.
    pub fn bank_ready(&self, addr: u64, now: u64) -> bool {
        self.ports[Self::bank(self.line(addr))]
            .iter()
            .any(|&busy_until| busy_until <= now)
    }

    /// Claims a port of the bank serving `addr` for a lookup issued at
    /// `t_req` (FCFS on the earliest-free port). Returns the queue delay —
    /// zero when a port is free, the wait otherwise.
    pub fn occupy(&mut self, addr: u64, t_req: u64) -> u64 {
        self.stats.lookups += 1;
        let bank = &mut self.ports[Self::bank(self.line(addr))];
        let mut slot = 0;
        for (i, &busy_until) in bank.iter().enumerate() {
            if busy_until < bank[slot] {
                slot = i;
            }
        }
        let t0 = t_req.max(bank[slot]);
        let extra = t0 - t_req;
        if extra > 0 {
            self.stats.bank_conflicts += 1;
            self.stats.conflict_cycles += extra;
        }
        bank[slot] = t0 + DIR_BANK_BUSY;
        extra
    }

    /// Accounts one filtered full-miss lookup: `probed` mask bits walked,
    /// `avoided` remote cores skipped.
    pub fn count_probes(&mut self, probed: u32, avoided: u32) {
        self.stats.probes_sent += probed as u64;
        self.stats.probes_avoided += avoided as u64;
    }

    /// Extra cycles a cache-to-cache transfer from `from` to `to` pays for
    /// grid hops beyond the first. Zero on quad-or-smaller systems (flat
    /// interconnect) and within a cluster.
    pub fn hop_extra(&mut self, from: usize, to: usize) -> u64 {
        if self.clusters <= QUAD_CLUSTERS {
            return 0;
        }
        let (ca, cb) = (from / CLUSTER_CORES, to / CLUSTER_CORES);
        if ca == cb {
            return 0;
        }
        let d = self.hops(ca, cb);
        let extra = GRID_HOP_LATENCY * (d - 1) as u64;
        self.stats.hop_cycles += extra;
        extra
    }

    /// Manhattan distance between two cluster tiles on the grid.
    pub fn hops(&self, ca: usize, cb: usize) -> usize {
        let (xa, ya) = (ca % self.side, ca / self.side);
        let (xb, yb) = (cb % self.side, cb / self.side);
        xa.abs_diff(xb) + ya.abs_diff(yb)
    }

    /// Serializes the sharer masks (sorted by line so the encoding is
    /// independent of hash-map order), port busy windows, and counters.
    pub fn save_state(&self, w: &mut remap_snap::Writer) {
        let mut lines: Vec<(u64, u64)> = self.sharers.iter().map(|(&l, &m)| (l, m)).collect();
        lines.sort_unstable_by_key(|&(l, _)| l);
        w.put_len(lines.len());
        for (line, mask) in lines {
            w.put_u64(line);
            w.put_u64(mask);
        }
        for bank in &self.ports {
            for &p in bank {
                w.put_u64(p);
            }
        }
        w.put_u64(self.stats.lookups);
        w.put_u64(self.stats.probes_sent);
        w.put_u64(self.stats.probes_avoided);
        w.put_u64(self.stats.bank_conflicts);
        w.put_u64(self.stats.conflict_cycles);
        w.put_u64(self.stats.back_invalidations);
        w.put_u32(self.stats.max_sharers);
        w.put_u64(self.stats.hop_cycles);
    }

    /// Restores state written by [`Directory::save_state`].
    pub fn load_state(&mut self, r: &mut remap_snap::Reader) -> Result<(), remap_snap::SnapError> {
        let n = r.get_len(1 << 28)?;
        self.sharers.clear();
        for _ in 0..n {
            let line = r.get_u64()?;
            let mask = r.get_u64()?;
            if mask == 0 {
                return Err(remap_snap::SnapError::Corrupt(format!(
                    "empty sharer mask for line {line:#x}"
                )));
            }
            self.sharers.insert(line, mask);
        }
        for bank in &mut self.ports {
            for p in bank {
                *p = r.get_u64()?;
            }
        }
        self.stats.lookups = r.get_u64()?;
        self.stats.probes_sent = r.get_u64()?;
        self.stats.probes_avoided = r.get_u64()?;
        self.stats.bank_conflicts = r.get_u64()?;
        self.stats.conflict_cycles = r.get_u64()?;
        self.stats.back_invalidations = r.get_u64()?;
        self.stats.max_sharers = r.get_u32()?;
        self.stats.hop_cycles = r.get_u64()?;
        Ok(())
    }

    /// Quiescence probe: the earliest port-free cycle of any *blocking*
    /// bank (all ports busy past `now`) — the only directory state that
    /// can gate a refused load. Banks with a free port report nothing
    /// (mirrors `MshrFile::blocking_wake`).
    pub fn next_event(&self, now: u64) -> Option<u64> {
        self.ports
            .iter()
            .filter(|bank| bank.iter().all(|&busy_until| busy_until > now))
            .map(|bank| bank.iter().copied().min().unwrap_or(u64::MAX))
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharer_bits_round_trip() {
        let mut d = Directory::new(4, 32, 64);
        assert_eq!(d.sharers(0x100), 0);
        d.add_sharer(0x100, 1);
        d.add_sharer(0x104, 3); // same 32-byte line
        assert_eq!(d.sharers(0x11f), 0b1010);
        assert_eq!(d.stats().max_sharers, 2);
        d.remove_sharer(0x100, 1);
        assert_eq!(d.sharers(0x100), 0b1000);
        d.back_invalidate(0x100, 3);
        assert_eq!(d.sharers(0x100), 0);
        assert_eq!(d.tracked_lines(), 0);
        assert_eq!(d.stats().back_invalidations, 1);
    }

    #[test]
    fn bank_ports_queue_fcfs() {
        let mut d = Directory::new(4, 32, 64);
        // Two lookups fill both ports of line 0's bank; the third queues.
        assert_eq!(d.occupy(0x0, 10), 0);
        assert_eq!(d.occupy(0x4, 10), 0); // same line, second port
        assert!(!d.bank_ready(0x0, 13), "both ports busy until 14");
        assert!(d.bank_ready(0x0, 14), "a port frees at 14");
        assert_eq!(d.occupy(0x0, 12), 2, "queues behind the earliest port");
        let s = d.stats();
        assert_eq!((s.lookups, s.bank_conflicts, s.conflict_cycles), (3, 1, 2));
        // A different bank is unaffected.
        assert!(d.bank_ready(32, 0));
        assert_eq!(d.occupy(32, 0), 0);
    }

    #[test]
    fn next_event_reports_only_blocking_banks() {
        let mut d = Directory::new(4, 32, 64);
        assert_eq!(d.next_event(0), None);
        d.occupy(0x0, 0); // one port busy until 4: not blocking
        assert_eq!(d.next_event(0), None);
        d.occupy(0x0, 2); // second port busy until 6: bank 0 blocks
        assert_eq!(d.next_event(3), Some(4));
        assert_eq!(d.next_event(4), None, "a port freed");
    }

    #[test]
    fn quad_grid_has_no_hop_charges() {
        let mut d = Directory::new(16, 32, 64);
        assert_eq!(d.side(), 2);
        assert_eq!(d.hop_extra(0, 15), 0, "quad clusters stay flat");
        assert_eq!(d.stats().hop_cycles, 0);
    }

    #[test]
    fn grid_hops_charge_beyond_the_first() {
        let mut d = Directory::new(36, 32, 64); // 9 clusters, 3x3
        assert_eq!(d.side(), 3);
        assert_eq!(d.hop_extra(0, 1), 0, "same cluster");
        assert_eq!(d.hop_extra(0, 4), 0, "adjacent tile: first hop is free");
        // Cluster 0 is (0,0); cluster 8 is (2,2): 4 hops, 3 charged.
        assert_eq!(d.hop_extra(0, 35), 3 * GRID_HOP_LATENCY);
        assert_eq!(d.stats().hop_cycles, 3 * GRID_HOP_LATENCY);
    }

    #[test]
    fn env_gate_parses_like_no_mlp() {
        assert!(dir_enabled_from_env(None));
        assert!(dir_enabled_from_env(Some("")));
        assert!(!dir_enabled_from_env(Some("1")));
        assert!(!dir_enabled_from_env(Some("0")), "any non-empty disables");
    }
}

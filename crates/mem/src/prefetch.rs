//! Hardware prefetchers for the non-blocking hierarchy.
//!
//! * L1D: a classic reference prediction table (RPT) — PC-indexed stride
//!   detection with 2-bit confidence, trained **only on demand full
//!   misses**. Training on the miss stream rather than every access means
//!   the observed stride of a sequential word-walk is the *line* stride
//!   (one miss per line), which is exactly the distance worth fetching.
//! * L1I: simple next-line, implemented inline in the hierarchy's fetch
//!   miss path (no state needed beyond the MSHR file).
//!
//! Both only ever *suggest* lines; the hierarchy issues a prefetch only
//! when an MSHR register and a memory-controller slot are free, so
//! prefetching can never block or starve demand traffic.

/// One RPT row.
#[derive(Debug, Clone, Copy)]
struct RptEntry {
    /// Full PC tag of the load instruction that owns the row.
    pc: u32,
    /// Address of the owner's previous miss.
    last: u64,
    /// Last observed miss-to-miss stride in bytes.
    stride: i64,
    /// 2-bit saturating confidence; predictions fire at ≥ 2.
    conf: u8,
    valid: bool,
}

/// PC-indexed stride reference prediction table.
#[derive(Debug, Clone)]
pub struct StrideRpt {
    entries: Vec<RptEntry>,
}

impl StrideRpt {
    /// A direct-mapped table with `rows` entries.
    pub fn new(rows: usize) -> StrideRpt {
        StrideRpt {
            entries: vec![
                RptEntry {
                    pc: 0,
                    last: 0,
                    stride: 0,
                    conf: 0,
                    valid: false,
                };
                rows.max(1)
            ],
        }
    }

    /// Trains on a demand full miss of `addr` by the load at `pc` and
    /// returns the predicted stride when confidence has built up.
    pub fn train(&mut self, pc: u32, addr: u64) -> Option<i64> {
        // PCs arrive as instruction indices, so consecutive instructions
        // land in consecutive rows without shifting.
        let i = (pc as usize) % self.entries.len();
        let e = &mut self.entries[i];
        if !e.valid || e.pc != pc {
            *e = RptEntry {
                pc,
                last: addr,
                stride: 0,
                conf: 0,
                valid: true,
            };
            return None;
        }
        let s = addr.wrapping_sub(e.last) as i64;
        if s == e.stride && s != 0 {
            e.conf = (e.conf + 1).min(3);
        } else {
            e.conf = e.conf.saturating_sub(1);
            e.stride = s;
        }
        e.last = addr;
        if e.conf >= 2 && e.stride != 0 {
            Some(e.stride)
        } else {
            None
        }
    }

    /// Serializes the table (checkpoint support).
    pub fn save_state(&self, w: &mut remap_snap::Writer) {
        w.put_len(self.entries.len());
        for e in &self.entries {
            w.put_u32(e.pc);
            w.put_u64(e.last);
            w.put_i64(e.stride);
            w.put_u8(e.conf);
            w.put_bool(e.valid);
        }
    }

    /// Restores state written by [`StrideRpt::save_state`] onto a table of
    /// identical row count.
    pub fn load_state(&mut self, r: &mut remap_snap::Reader) -> Result<(), remap_snap::SnapError> {
        r.get_exact_len(self.entries.len())?;
        for e in &mut self.entries {
            e.pc = r.get_u32()?;
            e.last = r.get_u64()?;
            e.stride = r.get_i64()?;
            e.conf = r.get_u8()?;
            e.valid = r.get_bool()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_stride_gains_confidence_after_three_misses() {
        let mut r = StrideRpt::new(16);
        assert_eq!(r.train(0x40, 0x1000), None, "first touch allocates");
        assert_eq!(r.train(0x40, 0x1020), None, "stride learned, conf 0->0");
        assert_eq!(r.train(0x40, 0x1040), None, "conf 1");
        assert_eq!(r.train(0x40, 0x1060), Some(0x20), "conf 2: predict");
        assert_eq!(r.train(0x40, 0x1080), Some(0x20), "conf saturates");
    }

    #[test]
    fn irregular_strides_never_fire() {
        let mut r = StrideRpt::new(16);
        let addrs = [0x1000u64, 0x5420, 0x2260, 0x9fa0, 0x30c0, 0x7780];
        for a in addrs {
            assert_eq!(r.train(0x40, a), None, "pointer chase stays quiet");
        }
    }

    #[test]
    fn negative_strides_are_predicted() {
        let mut r = StrideRpt::new(16);
        r.train(0x40, 0x5000);
        r.train(0x40, 0x4fe0);
        r.train(0x40, 0x4fc0);
        assert_eq!(r.train(0x40, 0x4fa0), Some(-0x20));
    }

    #[test]
    fn conflicting_pcs_steal_the_row() {
        let mut r = StrideRpt::new(1);
        r.train(0x40, 0x1000);
        r.train(0x40, 0x1020);
        r.train(0x40, 0x1040);
        // A different PC maps to the same (only) row and resets it.
        assert_eq!(r.train(0x80, 0x9000), None);
        assert_eq!(r.train(0x40, 0x1060), None, "row was stolen");
    }
}

//! A simple per-cluster memory controller: bounded in-flight DRAM
//! requests with FCFS slot arbitration and a bank-conflict penalty.
//!
//! The controller is timing-only, like the MSHR file: it never refuses a
//! demand request, it just schedules it. Each request occupies one of a
//! fixed number of *slots* (the in-flight bound — think channel queue
//! entries) for its whole service time, and one of a fixed number of
//! line-interleaved *banks* for the bank-busy window. A request issued at
//! `t_req` starts at the earliest cycle both a slot and its bank are free,
//! so queueing delay and bank conflicts surface as added latency — this is
//! what makes bandwidth, not just latency, part of the model.
//!
//! Determinism note for the quiescence skip engine: controller state is
//! mutated only by `request`, which the hierarchy calls during a core's
//! *real* step (a demand miss or a prefetch issued on one). The pure
//! readiness probes (`Hierarchy::load_ready` and friends) never touch the
//! controller, so skip and tick mode observe identical schedules.

/// One memory controller serving a cluster of cores.
#[derive(Debug, Clone)]
pub struct MemCtl {
    /// Busy-until cycle per in-flight slot.
    slots: Vec<u64>,
    /// Busy-until cycle per bank.
    banks: Vec<u64>,
    /// Cycles a bank stays busy after a request starts (the conflict
    /// penalty a same-bank successor pays).
    bank_busy: u32,
    /// log2 of the line size, for line-interleaved bank hashing.
    line_shift: u32,
    /// High-water mark of simultaneously busy slots.
    queue_peak: u32,
}

impl MemCtl {
    /// A controller with `slots` in-flight entries over `banks` banks.
    pub fn new(slots: usize, banks: usize, bank_busy: u32, line_bytes: u64) -> MemCtl {
        MemCtl {
            slots: vec![0; slots.max(1)],
            banks: vec![0; banks.max(1)],
            bank_busy,
            line_shift: line_bytes.max(1).trailing_zeros(),
            queue_peak: 0,
        }
    }

    /// Schedules a DRAM fetch of `line` requested at `t_req` with service
    /// time `service`; returns the completion cycle. Never refuses — a
    /// saturated controller simply pushes the start time out.
    pub fn request(&mut self, t_req: u64, line: u64, service: u32) -> u64 {
        let occupied = self.slots.iter().filter(|&&busy| busy > t_req).count() as u32 + 1;
        self.queue_peak = self.queue_peak.max(occupied.min(self.slots.len() as u32));
        // FCFS over the slot pool: take the slot that frees first.
        let slot = self
            .slots
            .iter()
            .enumerate()
            .min_by_key(|(_, &busy)| busy)
            .map(|(i, _)| i)
            .unwrap_or(0);
        let bank = ((line >> self.line_shift) as usize) % self.banks.len();
        let t0 = t_req.max(self.slots[slot]).max(self.banks[bank]);
        let done = t0 + service as u64;
        self.slots[slot] = done;
        self.banks[bank] = t0 + self.bank_busy as u64;
        done
    }

    /// True when a slot is free at `t` — the gate for *prefetch* requests,
    /// which must not steal bandwidth a demand would queue for.
    pub fn slot_available(&self, t: u64) -> bool {
        self.slots.iter().any(|&busy| busy <= t)
    }

    /// High-water mark of simultaneously busy slots.
    pub fn queue_peak(&self) -> u32 {
        self.queue_peak
    }

    /// Serializes the dynamic scheduling state (checkpoint support).
    pub fn save_state(&self, w: &mut remap_snap::Writer) {
        w.put_len(self.slots.len());
        for &s in &self.slots {
            w.put_u64(s);
        }
        w.put_len(self.banks.len());
        for &b in &self.banks {
            w.put_u64(b);
        }
        w.put_u32(self.queue_peak);
    }

    /// Restores state written by [`MemCtl::save_state`] onto a controller
    /// of identical geometry.
    pub fn load_state(&mut self, r: &mut remap_snap::Reader) -> Result<(), remap_snap::SnapError> {
        r.get_exact_len(self.slots.len())?;
        for s in &mut self.slots {
            *s = r.get_u64()?;
        }
        r.get_exact_len(self.banks.len())?;
        for b in &mut self.banks {
            *b = r.get_u64()?;
        }
        self.queue_peak = r.get_u32()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_request_costs_exactly_service_time() {
        let mut mc = MemCtl::new(4, 8, 20, 32);
        assert_eq!(mc.request(100, 0x1000, 200), 300);
        assert_eq!(mc.queue_peak(), 1);
    }

    #[test]
    fn same_bank_requests_serialize_by_the_penalty() {
        let mut mc = MemCtl::new(4, 8, 20, 32);
        // 8 banks × 32-byte lines: addresses 256 bytes apart share a bank.
        let a = mc.request(0, 0x0, 200);
        let b = mc.request(0, 0x100, 200);
        assert_eq!(a, 200);
        assert_eq!(b, 220, "second hit waits out the bank-busy window");
    }

    #[test]
    fn different_banks_overlap_fully() {
        let mut mc = MemCtl::new(4, 8, 20, 32);
        assert_eq!(mc.request(0, 0x0, 200), 200);
        assert_eq!(mc.request(0, 0x20, 200), 200, "next line, next bank");
    }

    #[test]
    fn slot_exhaustion_queues_the_request() {
        let mut mc = MemCtl::new(2, 8, 20, 32);
        mc.request(0, 0x0, 200);
        mc.request(0, 0x20, 200);
        assert!(!mc.slot_available(100));
        // Third request waits for the first slot to free at 200.
        assert_eq!(mc.request(0, 0x40, 200), 400);
        assert_eq!(mc.queue_peak(), 2, "peak is capped at the slot count");
        assert!(mc.slot_available(400));
    }
}

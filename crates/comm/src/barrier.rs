//! The per-cluster Barrier table (§II-B.2 of the paper).

/// Result of a thread arriving at a barrier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArriveOutcome {
    /// Not all participants have arrived yet.
    Waiting {
        /// Arrived count after this arrival.
        arrived: u32,
        /// Total expected.
        total: u32,
    },
    /// All participants have arrived and are active: the barrier releases.
    /// Contains the participating cores in arrival order.
    Release(Vec<usize>),
    /// All participants have arrived but some are switched out; the ReMAP
    /// controller must raise an exception to switch the missing threads back
    /// in (§II-B.2). Contains the inactive thread IDs.
    MissingThreads(Vec<u32>),
}

#[derive(Debug, Clone)]
struct BarrierEntry {
    barrier_id: u32,
    app_id: u32,
    total: u32,
    arrived: u32,
    cores: Vec<usize>,
    threads: Vec<u32>,
    active: Vec<bool>,
}

/// Tracks active barriers within one SPL cluster.
///
/// The table holds as many entries as cores attached to the cluster (each
/// core could be in a different barrier). Per the paper each entry needs
/// 8 bytes: 16 bits of IDs, 4+4 bits of arrived/total counts, 4 bits of
/// participating cores, 32 bits of participating thread IDs and 4 active
/// bits.
#[derive(Debug, Clone, Default)]
pub struct BarrierTable {
    entries: Vec<BarrierEntry>,
    capacity: usize,
    /// Barriers released through this table (for reports).
    pub releases: u64,
}

impl BarrierTable {
    /// Creates a table with one entry slot per attached core.
    pub fn new(cores_per_cluster: usize) -> BarrierTable {
        BarrierTable {
            entries: Vec::new(),
            capacity: cores_per_cluster,
            releases: 0,
        }
    }

    /// Bits per table entry (the paper's 8-byte sizing).
    pub fn entry_bits(&self) -> u32 {
        16 + 4 + 4 + 4 + 32 + 4
    }

    /// Records `thread` (running on `core`, application `app_id`) arriving
    /// at `barrier_id`, which synchronizes `total` threads.
    ///
    /// # Panics
    ///
    /// Panics if more distinct barriers are active than table entries, or if
    /// the same thread arrives twice at the same barrier instance.
    pub fn arrive(
        &mut self,
        barrier_id: u32,
        app_id: u32,
        total: u32,
        core: usize,
        thread: u32,
    ) -> ArriveOutcome {
        let idx = match self
            .entries
            .iter()
            .position(|e| e.barrier_id == barrier_id && e.app_id == app_id)
        {
            Some(i) => i,
            None => {
                assert!(
                    self.entries.len() < self.capacity,
                    "barrier table overflow: {} active barriers",
                    self.entries.len()
                );
                self.entries.push(BarrierEntry {
                    barrier_id,
                    app_id,
                    total,
                    arrived: 0,
                    cores: Vec::new(),
                    threads: Vec::new(),
                    active: Vec::new(),
                });
                self.entries.len() - 1
            }
        };
        let e = &mut self.entries[idx];
        assert!(
            !e.threads.contains(&thread),
            "thread {thread} arrived twice at barrier {barrier_id}"
        );
        e.arrived += 1;
        e.cores.push(core);
        e.threads.push(thread);
        e.active.push(true);
        if e.arrived < e.total {
            return ArriveOutcome::Waiting {
                arrived: e.arrived,
                total: e.total,
            };
        }
        if e.active.iter().all(|&a| a) {
            let e = self.entries.remove(idx);
            self.releases += 1;
            ArriveOutcome::Release(e.cores)
        } else {
            let missing = e
                .threads
                .iter()
                .zip(&e.active)
                .filter(|(_, &a)| !a)
                .map(|(&t, _)| t)
                .collect();
            ArriveOutcome::MissingThreads(missing)
        }
    }

    /// Marks a participating thread as switched out (`false`) or back in
    /// (`true`). Affects every barrier the thread participates in.
    pub fn set_active(&mut self, thread: u32, active: bool) {
        for e in &mut self.entries {
            for (t, a) in e.threads.iter().zip(e.active.iter_mut()) {
                if *t == thread {
                    *a = active;
                }
            }
        }
    }

    /// Re-checks a fully-arrived barrier after missing threads were switched
    /// back in; releases it if everyone is now active.
    pub fn try_release(&mut self, barrier_id: u32, app_id: u32) -> Option<Vec<usize>> {
        let idx = self
            .entries
            .iter()
            .position(|e| e.barrier_id == barrier_id && e.app_id == app_id)?;
        let e = &self.entries[idx];
        if e.arrived == e.total && e.active.iter().all(|&a| a) {
            let e = self.entries.remove(idx);
            self.releases += 1;
            Some(e.cores)
        } else {
            None
        }
    }

    /// Number of barriers currently tracked.
    pub fn active_barriers(&self) -> usize {
        self.entries.len()
    }

    /// Serializes the table contents (checkpoint support).
    pub fn save_state(&self, w: &mut remap_snap::Writer) {
        w.put_len(self.entries.len());
        for e in &self.entries {
            w.put_u32(e.barrier_id);
            w.put_u32(e.app_id);
            w.put_u32(e.total);
            w.put_u32(e.arrived);
            w.put_len(e.cores.len());
            for &c in &e.cores {
                w.put_usize(c);
            }
            for &t in &e.threads {
                w.put_u32(t);
            }
            for &a in &e.active {
                w.put_bool(a);
            }
        }
        w.put_u64(self.releases);
    }

    /// Restores state written by [`BarrierTable::save_state`] onto a table
    /// of identical capacity.
    pub fn load_state(&mut self, r: &mut remap_snap::Reader) -> Result<(), remap_snap::SnapError> {
        let n = r.get_len(self.capacity)?;
        self.entries.clear();
        for _ in 0..n {
            let barrier_id = r.get_u32()?;
            let app_id = r.get_u32()?;
            let total = r.get_u32()?;
            let arrived = r.get_u32()?;
            let k = r.get_len(1 << 20)?;
            let mut cores = Vec::with_capacity(k);
            for _ in 0..k {
                cores.push(r.get_usize()?);
            }
            let mut threads = Vec::with_capacity(k);
            for _ in 0..k {
                threads.push(r.get_u32()?);
            }
            let mut active = Vec::with_capacity(k);
            for _ in 0..k {
                active.push(r.get_bool()?);
            }
            self.entries.push(BarrierEntry {
                barrier_id,
                app_id,
                total,
                arrived,
                cores,
                threads,
                active,
            });
        }
        self.releases = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waits_then_releases_in_arrival_order() {
        let mut t = BarrierTable::new(4);
        assert_eq!(
            t.arrive(1, 0, 3, 0, 10),
            ArriveOutcome::Waiting {
                arrived: 1,
                total: 3
            }
        );
        assert_eq!(
            t.arrive(1, 0, 3, 2, 12),
            ArriveOutcome::Waiting {
                arrived: 2,
                total: 3
            }
        );
        match t.arrive(1, 0, 3, 1, 11) {
            ArriveOutcome::Release(cores) => assert_eq!(cores, vec![0, 2, 1]),
            other => panic!("expected release, got {other:?}"),
        }
        assert_eq!(t.active_barriers(), 0);
        assert_eq!(t.releases, 1);
    }

    #[test]
    fn distinct_barriers_tracked_independently() {
        let mut t = BarrierTable::new(4);
        t.arrive(1, 0, 2, 0, 10);
        t.arrive(2, 0, 2, 1, 11);
        assert_eq!(t.active_barriers(), 2);
        assert!(matches!(
            t.arrive(2, 0, 2, 2, 12),
            ArriveOutcome::Release(_)
        ));
        assert!(matches!(
            t.arrive(1, 0, 2, 3, 13),
            ArriveOutcome::Release(_)
        ));
    }

    #[test]
    fn same_id_different_app_is_different_barrier() {
        let mut t = BarrierTable::new(4);
        t.arrive(1, 0, 2, 0, 10);
        assert_eq!(
            t.arrive(1, 1, 2, 1, 11),
            ArriveOutcome::Waiting {
                arrived: 1,
                total: 2
            }
        );
        assert_eq!(t.active_barriers(), 2);
    }

    #[test]
    fn inactive_thread_triggers_exception_path() {
        let mut t = BarrierTable::new(4);
        t.arrive(5, 0, 2, 0, 100);
        t.set_active(100, false); // thread switched out while waiting
        match t.arrive(5, 0, 2, 1, 101) {
            ArriveOutcome::MissingThreads(m) => assert_eq!(m, vec![100]),
            other => panic!("expected missing threads, got {other:?}"),
        }
        // Still pending; switching the thread back in releases it.
        assert_eq!(t.try_release(5, 0), None);
        t.set_active(100, true);
        assert_eq!(t.try_release(5, 0), Some(vec![0, 1]));
    }

    #[test]
    #[should_panic(expected = "arrived twice")]
    fn double_arrival_panics() {
        let mut t = BarrierTable::new(4);
        t.arrive(1, 0, 3, 0, 10);
        t.arrive(1, 0, 3, 0, 10);
    }

    #[test]
    #[should_panic(expected = "barrier table overflow")]
    fn overflow_panics() {
        let mut t = BarrierTable::new(1);
        t.arrive(1, 0, 2, 0, 10);
        t.arrive(2, 0, 2, 1, 11);
    }

    #[test]
    fn entry_sizing_matches_paper() {
        let t = BarrierTable::new(4);
        assert_eq!(t.entry_bits(), 64, "8 bytes per entry");
    }
}

//! The Thread-to-Core table (§II-B.1 of the paper).

use std::error::Error;
use std::fmt;

/// Errors from table operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum T2cError {
    /// The core still has SPL results in flight toward it; switch-out must
    /// wait until the counter drains (§II-B.1).
    InFlight(u8),
    /// No thread is bound to the core.
    NotBound,
}

impl fmt::Display for T2cError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            T2cError::InFlight(n) => write!(f, "{n} SPL instructions in flight to this core"),
            T2cError::NotBound => write!(f, "no thread bound to this core"),
        }
    }
}

impl Error for T2cError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct T2cEntry {
    thread: u32,
    app: u32,
    in_flight: u8,
}

/// The per-SPL Thread-to-Core table: one entry per attached core holding the
/// running thread's ID, its application ID, and the count of in-flight SPL
/// instructions destined for that core.
///
/// Per the paper each entry is an 11.5 B CAM record (16 bits of IDs, 5 bits
/// of in-flight count, 2 bits of hard-wired core ID); [`entry_bits`] exposes
/// that sizing for the area model.
///
/// An SPL instruction naming a destination *thread* resolves it here at
/// issue. If the thread is not present the instruction does not issue —
/// preventing a producer from filling the fabric when its consumer has been
/// switched out. The in-flight counters gate switch-out: a thread may leave
/// its core only when no results are still heading toward it.
///
/// [`entry_bits`]: ThreadToCoreTable::entry_bits
#[derive(Debug, Clone)]
pub struct ThreadToCoreTable {
    entries: Vec<Option<T2cEntry>>,
    /// Reverse index for grid-scale tables: thread ID → bitmask of bound
    /// cores, giving O(1) [`lookup`](Self::lookup) instead of a scan over
    /// every core slot. Maintained only when the core count fits one mask
    /// word; larger tables fall back to the linear CAM walk.
    by_thread: std::collections::HashMap<u32, u64>,
    max_in_flight: u8,
}

impl ThreadToCoreTable {
    /// Creates a table for `n_cores` cores with the paper's limit of 24
    /// in-flight instructions (the fabric has 24 rows).
    pub fn new(n_cores: usize) -> ThreadToCoreTable {
        ThreadToCoreTable {
            entries: vec![None; n_cores],
            by_thread: std::collections::HashMap::new(),
            max_in_flight: 24,
        }
    }

    /// Drops `core`'s bit from the reverse index entry of `thread`.
    fn unindex(&mut self, thread: u32, core: usize) {
        if core < 64 {
            if let Some(mask) = self.by_thread.get_mut(&thread) {
                *mask &= !(1u64 << core);
                if *mask == 0 {
                    self.by_thread.remove(&thread);
                }
            }
        }
    }

    /// Number of core slots.
    pub fn n_cores(&self) -> usize {
        self.entries.len()
    }

    /// Bits per CAM entry: 16 for thread+app IDs (256 each), 5 for the
    /// in-flight count, 2 for the hard-coded core ID.
    pub fn entry_bits(&self) -> u32 {
        16 + 5 + 2
    }

    /// Binds `thread` of application `app` to `core` (thread switch-in).
    /// Any previous binding of the core is replaced.
    pub fn bind(&mut self, core: usize, thread: u32, app: u32) {
        if let Some(old) = self.entries[core] {
            self.unindex(old.thread, core);
        }
        if core < 64 {
            *self.by_thread.entry(thread).or_insert(0) |= 1u64 << core;
        }
        self.entries[core] = Some(T2cEntry {
            thread,
            app,
            in_flight: 0,
        });
    }

    /// Unbinds the thread on `core` (switch-out).
    ///
    /// # Errors
    ///
    /// [`T2cError::InFlight`] when SPL results are still bound for this core
    /// — the thread must keep running until the counter reaches zero;
    /// [`T2cError::NotBound`] if the core is idle.
    pub fn unbind(&mut self, core: usize) -> Result<(), T2cError> {
        match self.entries[core] {
            None => Err(T2cError::NotBound),
            Some(e) if e.in_flight > 0 => Err(T2cError::InFlight(e.in_flight)),
            Some(e) => {
                self.unindex(e.thread, core);
                self.entries[core] = None;
                Ok(())
            }
        }
    }

    /// The core currently running `thread`, if any (the CAM lookup performed
    /// when an SPL instruction issues). O(1) through the reverse index; the
    /// lowest-numbered bound core wins, matching the original CAM scan.
    pub fn lookup(&self, thread: u32) -> Option<usize> {
        if self.entries.len() <= 64 {
            return self
                .by_thread
                .get(&thread)
                .map(|mask| mask.trailing_zeros() as usize);
        }
        self.entries
            .iter()
            .position(|e| matches!(e, Some(x) if x.thread == thread))
    }

    /// The thread bound to `core`, if any.
    pub fn thread_on(&self, core: usize) -> Option<u32> {
        self.entries[core].map(|e| e.thread)
    }

    /// Registers an in-flight SPL instruction destined for `core`. Returns
    /// `false` (and does not count it) when the per-core limit of 24 is
    /// reached — the instruction must not issue this cycle.
    pub fn inc_in_flight(&mut self, core: usize) -> bool {
        match &mut self.entries[core] {
            Some(e) if e.in_flight < self.max_in_flight => {
                e.in_flight += 1;
                true
            }
            _ => false,
        }
    }

    /// Retires an in-flight SPL instruction (its result reached the output
    /// queue of `core`).
    pub fn dec_in_flight(&mut self, core: usize) {
        if let Some(e) = &mut self.entries[core] {
            e.in_flight = e.in_flight.saturating_sub(1);
        }
    }

    /// Current in-flight count toward `core`.
    pub fn in_flight(&self, core: usize) -> u8 {
        self.entries[core].map(|e| e.in_flight).unwrap_or(0)
    }

    /// Whether another in-flight SPL instruction toward `core` would be
    /// admitted right now (pure probe: the quiescence analysis uses this to
    /// mirror [`ThreadToCoreTable::inc_in_flight`] without mutating).
    pub fn has_capacity(&self, core: usize) -> bool {
        matches!(&self.entries[core], Some(e) if e.in_flight < self.max_in_flight)
    }

    /// Serializes the bindings (checkpoint support). The reverse index is
    /// derived and is rebuilt on load.
    pub fn save_state(&self, w: &mut remap_snap::Writer) {
        w.put_len(self.entries.len());
        for e in &self.entries {
            match e {
                None => w.put_bool(false),
                Some(e) => {
                    w.put_bool(true);
                    w.put_u32(e.thread);
                    w.put_u32(e.app);
                    w.put_u8(e.in_flight);
                }
            }
        }
    }

    /// Restores state written by [`ThreadToCoreTable::save_state`] onto a
    /// table of identical core count, rebuilding the reverse index.
    pub fn load_state(&mut self, r: &mut remap_snap::Reader) -> Result<(), remap_snap::SnapError> {
        r.get_exact_len(self.entries.len())?;
        self.by_thread.clear();
        for core in 0..self.entries.len() {
            self.entries[core] = if r.get_bool()? {
                let thread = r.get_u32()?;
                let app = r.get_u32()?;
                let in_flight = r.get_u8()?;
                if core < 64 {
                    *self.by_thread.entry(thread).or_insert(0) |= 1u64 << core;
                }
                Some(T2cEntry {
                    thread,
                    app,
                    in_flight,
                })
            } else {
                None
            };
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_lookup_unbind() {
        let mut t = ThreadToCoreTable::new(4);
        t.bind(2, 7, 1);
        assert_eq!(t.lookup(7), Some(2));
        assert_eq!(t.thread_on(2), Some(7));
        assert_eq!(t.lookup(8), None);
        t.unbind(2).unwrap();
        assert_eq!(t.lookup(7), None);
    }

    #[test]
    fn unbind_blocked_by_in_flight() {
        let mut t = ThreadToCoreTable::new(4);
        t.bind(0, 1, 1);
        assert!(t.inc_in_flight(0));
        assert_eq!(t.unbind(0), Err(T2cError::InFlight(1)));
        t.dec_in_flight(0);
        assert_eq!(t.unbind(0), Ok(()));
    }

    #[test]
    fn unbound_core_errors() {
        let mut t = ThreadToCoreTable::new(2);
        assert_eq!(t.unbind(0), Err(T2cError::NotBound));
        assert!(!t.inc_in_flight(0), "cannot target an idle core");
    }

    #[test]
    fn in_flight_limit_is_24() {
        let mut t = ThreadToCoreTable::new(1);
        t.bind(0, 1, 1);
        for _ in 0..24 {
            assert!(t.inc_in_flight(0));
        }
        assert!(
            !t.inc_in_flight(0),
            "fabric has 24 rows; 25th must not issue"
        );
        assert_eq!(t.in_flight(0), 24);
    }

    #[test]
    fn rebinding_replaces() {
        let mut t = ThreadToCoreTable::new(2);
        t.bind(0, 1, 1);
        t.bind(0, 2, 1);
        assert_eq!(t.lookup(1), None);
        assert_eq!(t.lookup(2), Some(0));
    }

    #[test]
    fn duplicate_bindings_resolve_to_the_lowest_core() {
        // The reverse index must keep the original CAM-scan semantics: the
        // lowest-numbered core bound to the thread wins.
        let mut t = ThreadToCoreTable::new(8);
        t.bind(5, 7, 1);
        t.bind(2, 7, 1);
        assert_eq!(t.lookup(7), Some(2));
        t.unbind(2).unwrap();
        assert_eq!(t.lookup(7), Some(5));
        t.bind(5, 9, 1); // rebind drops the old thread's index entry
        assert_eq!(t.lookup(7), None);
        assert_eq!(t.lookup(9), Some(5));
    }

    #[test]
    fn entry_sizing_matches_paper() {
        let t = ThreadToCoreTable::new(4);
        // 23 bits/entry × 4 entries = 92 bits = 11.5 bytes of CAM.
        assert_eq!(t.entry_bits() * 4, 92);
    }
}

//! Idealized dedicated hardware barrier network (homogeneous baseline,
//! §V-C.2).
//!
//! Models dedicated-interconnect barrier proposals (Beckmann &
//! Polychronopoulos; Shang & Hwang): cores announce arrival over a private
//! network with no cost, and all participants release the cycle after the
//! last arrival. Reusable across barrier instances via generation counters
//! (sense reversal).

use std::collections::HashMap;

#[derive(Debug, Clone, Default)]
struct BarState {
    total: u32,
    count: u32,
    generation: u64,
    /// Generation at which each waiting core arrived.
    waiting: HashMap<usize, u64>,
}

/// An ideal hardware barrier network.
///
/// Cores poll [`HwBarrierNet::poll`] each cycle while blocked at a `hwbar`
/// instruction; the first poll registers arrival, subsequent polls check for
/// release.
#[derive(Debug, Clone, Default)]
pub struct HwBarrierNet {
    barriers: HashMap<u8, BarState>,
    /// Barrier episodes completed.
    pub completions: u64,
}

impl HwBarrierNet {
    /// Creates an empty network.
    pub fn new() -> HwBarrierNet {
        HwBarrierNet::default()
    }

    /// Declares barrier `id` to synchronize `total` cores. Must be called
    /// before any participant polls.
    pub fn configure(&mut self, id: u8, total: u32) {
        self.barriers.entry(id).or_default().total = total;
    }

    /// Polls barrier `id` from `core`. The first poll of an episode arrives;
    /// returns `true` once the episode has released this core.
    ///
    /// Polling a barrier that was never configured returns `false` forever
    /// (it can never release); callers that want a structured error check
    /// [`HwBarrierNet::is_configured`] first, as the system loop does.
    pub fn poll(&mut self, core: usize, id: u8) -> bool {
        let Some(b) = self.barriers.get_mut(&id) else {
            return false;
        };
        match b.waiting.get(&core).copied() {
            None => {
                // Arrival.
                b.count += 1;
                if b.count == b.total {
                    // Last arrival: release everyone.
                    b.generation += 1;
                    b.count = 0;
                    b.waiting.remove(&core);
                    self.completions += 1;
                    true
                } else {
                    b.waiting.insert(core, b.generation);
                    false
                }
            }
            Some(gen) => {
                if b.generation > gen {
                    b.waiting.remove(&core);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Whether barrier `id` has been configured. Callers that cannot
    /// tolerate the poll panics (the panic-free system loop) check this
    /// before polling and surface a structured error instead.
    pub fn is_configured(&self, id: u8) -> bool {
        self.barriers.contains_key(&id)
    }

    /// Whether the next [`HwBarrierNet::poll`] by `core` would make progress
    /// (arrive or observe a release), without mutating anything. A core that
    /// has not yet arrived always progresses (its first poll counts it); a
    /// waiting core progresses only once a newer generation has released.
    pub fn poll_ready(&self, core: usize, id: u8) -> bool {
        let Some(b) = self.barriers.get(&id) else {
            return false;
        };
        match b.waiting.get(&core).copied() {
            None => true,
            Some(gen) => b.generation > gen,
        }
    }

    /// Configured barrier geometry as sorted `(id, participant total)`
    /// pairs. Exported for the static message-flow verifier.
    pub fn configured(&self) -> Vec<(u8, u32)> {
        let mut v: Vec<(u8, u32)> = self.barriers.iter().map(|(&id, b)| (id, b.total)).collect();
        v.sort_unstable();
        v
    }

    /// Serializes all barrier state, sorted by id for determinism
    /// (checkpoint support).
    pub fn save_state(&self, w: &mut remap_snap::Writer) {
        let mut ids: Vec<u8> = self.barriers.keys().copied().collect();
        ids.sort_unstable();
        w.put_len(ids.len());
        for id in ids {
            let b = &self.barriers[&id];
            w.put_u8(id);
            w.put_u32(b.total);
            w.put_u32(b.count);
            w.put_u64(b.generation);
            let mut waiting: Vec<(usize, u64)> = b.waiting.iter().map(|(&c, &g)| (c, g)).collect();
            waiting.sort_unstable();
            w.put_len(waiting.len());
            for (core, gen) in waiting {
                w.put_usize(core);
                w.put_u64(gen);
            }
        }
        w.put_u64(self.completions);
    }

    /// Restores state written by [`HwBarrierNet::save_state`], replacing any
    /// existing configuration.
    pub fn load_state(&mut self, r: &mut remap_snap::Reader) -> Result<(), remap_snap::SnapError> {
        let n = r.get_len(256)?;
        self.barriers.clear();
        for _ in 0..n {
            let id = r.get_u8()?;
            let total = r.get_u32()?;
            let count = r.get_u32()?;
            let generation = r.get_u64()?;
            let k = r.get_len(1 << 20)?;
            let mut waiting = HashMap::new();
            for _ in 0..k {
                let core = r.get_usize()?;
                let gen = r.get_u64()?;
                if waiting.insert(core, gen).is_some() {
                    return Err(remap_snap::SnapError::Corrupt(format!(
                        "duplicate waiter core {core} on barrier {id}"
                    )));
                }
            }
            if self
                .barriers
                .insert(
                    id,
                    BarState {
                        total,
                        count,
                        generation,
                        waiting,
                    },
                )
                .is_some()
            {
                return Err(remap_snap::SnapError::Corrupt(format!(
                    "duplicate barrier id {id}"
                )));
            }
        }
        self.completions = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_core_barrier_releases_both() {
        let mut net = HwBarrierNet::new();
        net.configure(0, 2);
        assert!(!net.poll(0, 0), "first core waits");
        assert!(!net.poll(0, 0), "still waiting");
        assert!(net.poll(1, 0), "last arrival releases immediately");
        assert!(net.poll(0, 0), "waiter observes release");
        assert_eq!(net.completions, 1);
    }

    #[test]
    fn barrier_is_reusable() {
        let mut net = HwBarrierNet::new();
        net.configure(3, 2);
        for _ in 0..5 {
            assert!(!net.poll(0, 3));
            assert!(net.poll(1, 3));
            assert!(net.poll(0, 3));
        }
        assert_eq!(net.completions, 5);
    }

    #[test]
    fn interleaved_episodes_do_not_confuse_generations() {
        let mut net = HwBarrierNet::new();
        net.configure(0, 2);
        assert!(!net.poll(0, 0));
        assert!(net.poll(1, 0));
        // Core 1 races ahead into the next episode before core 0 noticed.
        assert!(!net.poll(1, 0), "core 1 arrives at episode 2");
        assert!(net.poll(0, 0), "core 0 releases from episode 1");
        assert!(!net.poll(1, 0), "episode 2 still waiting for core 0");
        assert!(net.poll(0, 0), "core 0's arrival completes episode 2");
        assert!(net.poll(1, 0));
        assert_eq!(net.completions, 2);
    }

    #[test]
    fn independent_ids() {
        let mut net = HwBarrierNet::new();
        net.configure(0, 2);
        net.configure(1, 2);
        assert!(!net.poll(0, 0));
        assert!(!net.poll(0, 1));
        assert!(net.poll(1, 1));
        assert!(net.poll(1, 0));
    }

    #[test]
    fn unconfigured_never_releases() {
        let mut net = HwBarrierNet::new();
        assert!(!net.poll(0, 9));
        assert!(!net.poll_ready(0, 9));
        assert!(!net.is_configured(9));
    }

    #[test]
    fn configured_geometry_is_sorted() {
        let mut net = HwBarrierNet::new();
        net.configure(2, 8);
        net.configure(0, 4);
        assert_eq!(net.configured(), vec![(0, 4), (2, 8)]);
    }
}

//! Inter-cluster grid topology for the N-cluster scale-out.
//!
//! The paper's system is a single four-core SPL cluster; up to four
//! clusters the reproduction keeps the paper's flat arrangement, where the
//! dedicated barrier bus reaches every remote cluster in one fixed-latency
//! transfer. Beyond that the clusters tile a near-square mesh: barrier
//! releases and other cross-cluster traffic pay a per-hop charge for every
//! Manhattan hop past the first (the bus latency itself covers one hop, so
//! all quad-and-smaller timing is bit-identical to the pre-grid model).

/// Fixed transfer latency of the inter-cluster barrier bus in cycles
/// (one bus message; covers the first grid hop).
pub const BARRIER_BUS_LATENCY: u64 = 8;

/// Extra cycles per grid hop beyond the first on cross-cluster traffic.
pub const CLUSTER_HOP_LATENCY: u64 = 4;

/// Cluster count up to which the interconnect stays the paper's flat quad
/// arrangement (no hop charges).
const QUAD_CLUSTERS: usize = 4;

/// A near-square mesh of SPL clusters.
///
/// ```
/// use remap_comm::ClusterGrid;
/// let g = ClusterGrid::new(9); // 36 cores: 3x3 clusters
/// assert_eq!(g.side(), 3);
/// assert_eq!(g.hops(0, 8), 4); // (0,0) -> (2,2)
/// assert_eq!(g.release_latency(1, 1), 0, "same cluster: no bus transfer");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterGrid {
    clusters: usize,
    side: usize,
}

impl ClusterGrid {
    /// A grid of `clusters` tiles, `ceil(sqrt(clusters))` per side.
    pub fn new(clusters: usize) -> ClusterGrid {
        let clusters = clusters.max(1);
        let mut side = 1usize;
        while side * side < clusters {
            side += 1;
        }
        ClusterGrid { clusters, side }
    }

    /// Number of cluster tiles.
    pub fn clusters(&self) -> usize {
        self.clusters
    }

    /// Grid side length.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Manhattan distance between two cluster tiles.
    pub fn hops(&self, ca: usize, cb: usize) -> usize {
        let (xa, ya) = (ca % self.side, ca / self.side);
        let (xb, yb) = (cb % self.side, cb / self.side);
        xa.abs_diff(xb) + ya.abs_diff(yb)
    }

    /// Cycles a barrier release broadcast from cluster `from` takes to
    /// reach a core in cluster `to`: zero within the cluster, one bus
    /// transfer on quad-and-smaller systems, and a per-hop surcharge past
    /// the first hop on larger grids.
    pub fn release_latency(&self, from: usize, to: usize) -> u64 {
        if from == to {
            return 0;
        }
        if self.clusters <= QUAD_CLUSTERS {
            return BARRIER_BUS_LATENCY;
        }
        let d = self.hops(from, to).max(1) as u64;
        BARRIER_BUS_LATENCY + CLUSTER_HOP_LATENCY * (d - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quad_and_smaller_grids_keep_the_flat_bus() {
        for clusters in 1..=4 {
            let g = ClusterGrid::new(clusters);
            for a in 0..clusters {
                for b in 0..clusters {
                    let want = if a == b { 0 } else { BARRIER_BUS_LATENCY };
                    assert_eq!(g.release_latency(a, b), want, "{clusters}: {a}->{b}");
                }
            }
        }
    }

    #[test]
    fn nine_clusters_tile_three_by_three() {
        let g = ClusterGrid::new(9);
        assert_eq!(g.side(), 3);
        assert_eq!(g.hops(0, 1), 1);
        assert_eq!(g.hops(0, 8), 4);
        assert_eq!(g.release_latency(0, 1), BARRIER_BUS_LATENCY);
        assert_eq!(
            g.release_latency(0, 8),
            BARRIER_BUS_LATENCY + 3 * CLUSTER_HOP_LATENCY
        );
    }

    #[test]
    fn sixteen_clusters_tile_four_by_four() {
        let g = ClusterGrid::new(16); // 64 cores
        assert_eq!(g.side(), 4);
        assert_eq!(g.hops(0, 15), 6);
        assert_eq!(
            g.release_latency(0, 15),
            BARRIER_BUS_LATENCY + 5 * CLUSTER_HOP_LATENCY
        );
    }

    #[test]
    fn zero_clusters_clamp_to_one() {
        let g = ClusterGrid::new(0);
        assert_eq!(g.clusters(), 1);
        assert_eq!(g.release_latency(0, 0), 0);
    }
}

//! Idealized dedicated hardware-queue network (the OOO2+Comm baseline).
//!
//! The paper compares ReMAP against a cluster of OOO2 cores with a dedicated
//! point-to-point communication network in the style of the synchronization
//! array of decoupled software pipelining, assumed to have *zero hardware
//! cost*. We model it as a set of deep FIFO queues of 64-bit values with
//! single-cycle access; the core model charges the (1-cycle) access latency.

/// A bank of idealized hardware FIFO queues.
#[derive(Debug, Clone)]
pub struct HwQueueNet {
    queues: Vec<Vec<u64>>,
    capacity: usize,
    /// Total values transferred (for reports/power).
    pub transfers: u64,
}

impl HwQueueNet {
    /// Creates `n_queues` queues holding up to `capacity` values each.
    pub fn new(n_queues: usize, capacity: usize) -> HwQueueNet {
        HwQueueNet {
            queues: vec![Vec::new(); n_queues],
            capacity,
            transfers: 0,
        }
    }

    /// Number of queues.
    pub fn n_queues(&self) -> usize {
        self.queues.len()
    }

    /// Per-queue capacity (values a queue holds before backpressuring).
    /// Exported geometry for the static message-flow verifier.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pushes `value` into queue `q`; `false` when full (sender retries).
    pub fn send(&mut self, q: usize, value: u64) -> bool {
        if self.queues[q].len() >= self.capacity {
            return false;
        }
        self.queues[q].push(value);
        self.transfers += 1;
        true
    }

    /// Pops the oldest value of queue `q`, if any.
    pub fn recv(&mut self, q: usize) -> Option<u64> {
        if self.queues[q].is_empty() {
            None
        } else {
            Some(self.queues[q].remove(0))
        }
    }

    /// Current depth of queue `q`.
    pub fn len(&self, q: usize) -> usize {
        self.queues[q].len()
    }

    /// Whether queue `q` is empty.
    pub fn is_empty(&self, q: usize) -> bool {
        self.queues[q].is_empty()
    }

    /// Whether queue `q` would reject a send right now (quiescence probe).
    pub fn is_full(&self, q: usize) -> bool {
        self.queues[q].len() >= self.capacity
    }

    /// Serializes all queue contents (checkpoint support).
    pub fn save_state(&self, w: &mut remap_snap::Writer) {
        w.put_len(self.queues.len());
        for q in &self.queues {
            w.put_len(q.len());
            for &v in q {
                w.put_u64(v);
            }
        }
        w.put_u64(self.transfers);
    }

    /// Restores state written by [`HwQueueNet::save_state`] onto a network
    /// of identical geometry.
    pub fn load_state(&mut self, r: &mut remap_snap::Reader) -> Result<(), remap_snap::SnapError> {
        r.get_exact_len(self.queues.len())?;
        for q in &mut self.queues {
            let n = r.get_len(self.capacity)?;
            q.clear();
            for _ in 0..n {
                q.push(r.get_u64()?);
            }
        }
        self.transfers = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut net = HwQueueNet::new(2, 4);
        assert!(net.send(0, 1));
        assert!(net.send(0, 2));
        assert!(net.send(1, 9));
        assert_eq!(net.recv(0), Some(1));
        assert_eq!(net.recv(0), Some(2));
        assert_eq!(net.recv(0), None);
        assert_eq!(net.recv(1), Some(9));
        assert_eq!(net.transfers, 3);
    }

    #[test]
    fn geometry_accessors() {
        let net = HwQueueNet::new(3, 7);
        assert_eq!(net.n_queues(), 3);
        assert_eq!(net.capacity(), 7);
    }

    #[test]
    fn capacity_backpressure() {
        let mut net = HwQueueNet::new(1, 2);
        assert!(net.send(0, 1));
        assert!(net.send(0, 2));
        assert!(!net.send(0, 3), "full queue rejects");
        net.recv(0);
        assert!(net.send(0, 3));
        assert_eq!(net.len(0), 2);
    }
}

//! # remap-comm
//!
//! Communication state for the ReMAP reproduction:
//!
//! * the **Thread-to-Core table** (§II-B.1): a small per-SPL CAM mapping
//!   threads to cores, with in-flight instruction counters that virtualize
//!   destination selection and gate thread switch-out;
//! * the **Barrier table** (§II-B.2): per-cluster tracking of active
//!   barriers (IDs, arrived/total thread counts, participating cores,
//!   active bits);
//! * the **inter-cluster barrier bus** (16 data lines + control) used when a
//!   barrier spans multiple SPL clusters;
//! * the two baseline devices the paper compares against: an idealized
//!   dedicated hardware queue network (the OOO2+Comm configuration) and an
//!   idealized dedicated hardware barrier network (the homogeneous-cluster
//!   comparison of §V-C.2).

mod barrier;
mod bus;
mod hwbarrier;
mod hwqueue;
mod t2c;
mod topology;

pub use barrier::{ArriveOutcome, BarrierTable};
pub use bus::{BarrierBus, BusMessage};
pub use hwbarrier::HwBarrierNet;
pub use hwqueue::HwQueueNet;
pub use t2c::{T2cError, ThreadToCoreTable};
pub use topology::{ClusterGrid, BARRIER_BUS_LATENCY, CLUSTER_HOP_LATENCY};

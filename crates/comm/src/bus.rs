//! The dedicated inter-cluster barrier bus (§II-B.2).
//!
//! In a system with multiple SPL clusters, barrier arrivals are broadcast
//! between clusters over a narrow dedicated bus carrying the barrier ID and
//! application ID (16 data lines plus control). The bus serializes messages
//! and adds a fixed transfer latency.

/// One barrier-update message on the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusMessage {
    /// Barrier ID (8 bits on the wire).
    pub barrier_id: u32,
    /// Application ID (8 bits on the wire).
    pub app_id: u32,
    /// Source cluster.
    pub from_cluster: usize,
    /// Cycle at which the message is visible to the other clusters.
    pub deliver_at: u64,
}

/// A serializing broadcast bus with fixed per-message latency.
///
/// ```
/// use remap_comm::BarrierBus;
/// let mut bus = BarrierBus::new(4);
/// bus.send(1, 0, 0, 100);          // cluster 0 announces barrier 1 at cycle 100
/// assert!(bus.deliver(103).is_empty(), "still in flight");
/// let msgs = bus.deliver(104);
/// assert_eq!(msgs.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BarrierBus {
    latency: u64,
    queue: Vec<BusMessage>,
    next_free: u64,
    /// Messages transferred (for power accounting).
    pub messages: u64,
}

impl BarrierBus {
    /// Creates a bus with the given per-message latency in core cycles.
    pub fn new(latency: u64) -> BarrierBus {
        BarrierBus {
            latency,
            ..BarrierBus::default()
        }
    }

    /// Width of the bus in data lines (16 per the paper: 8-bit barrier ID +
    /// 8-bit application ID).
    pub fn data_lines(&self) -> u32 {
        16
    }

    /// Enqueues a barrier-update broadcast at `now`. Messages serialize: a
    /// message starts only when the bus is free.
    pub fn send(&mut self, barrier_id: u32, app_id: u32, from_cluster: usize, now: u64) {
        let start = now.max(self.next_free);
        let deliver_at = start + self.latency;
        self.next_free = deliver_at;
        self.messages += 1;
        self.queue.push(BusMessage {
            barrier_id,
            app_id,
            from_cluster,
            deliver_at,
        });
    }

    /// Returns (and removes) all messages that have arrived by `now`.
    pub fn deliver(&mut self, now: u64) -> Vec<BusMessage> {
        let (ready, pending): (Vec<_>, Vec<_>) =
            self.queue.drain(..).partition(|m| m.deliver_at <= now);
        self.queue = pending;
        ready
    }

    /// Removes (and counts) all messages that have arrived by `now` without
    /// returning them. Allocation-free: the per-cycle path of callers that
    /// only need delivery side-effects (energy counters already accumulated
    /// at [`BarrierBus::send`]) uses this instead of [`BarrierBus::deliver`].
    pub fn drain_ready(&mut self, now: u64) -> usize {
        let before = self.queue.len();
        self.queue.retain(|m| m.deliver_at > now);
        before - self.queue.len()
    }

    /// Messages still in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Earliest cycle at which an in-flight message becomes deliverable, or
    /// `None` when the bus is empty (quiescence probe).
    pub fn next_event(&self) -> Option<u64> {
        self.queue.iter().map(|m| m.deliver_at).min()
    }

    /// Serializes the in-flight messages and arbitration state (checkpoint
    /// support).
    pub fn save_state(&self, w: &mut remap_snap::Writer) {
        w.put_len(self.queue.len());
        for m in &self.queue {
            w.put_u32(m.barrier_id);
            w.put_u32(m.app_id);
            w.put_usize(m.from_cluster);
            w.put_u64(m.deliver_at);
        }
        w.put_u64(self.next_free);
        w.put_u64(self.messages);
    }

    /// Restores state written by [`BarrierBus::save_state`] onto a bus of
    /// identical latency.
    pub fn load_state(&mut self, r: &mut remap_snap::Reader) -> Result<(), remap_snap::SnapError> {
        let n = r.get_len(1 << 20)?;
        self.queue.clear();
        for _ in 0..n {
            self.queue.push(BusMessage {
                barrier_id: r.get_u32()?,
                app_id: r.get_u32()?,
                from_cluster: r.get_usize()?,
                deliver_at: r.get_u64()?,
            });
        }
        self.next_free = r.get_u64()?;
        self.messages = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_serialize_on_the_bus() {
        let mut bus = BarrierBus::new(4);
        bus.send(1, 0, 0, 10); // delivers at 14
        bus.send(2, 0, 1, 10); // bus busy until 14 → delivers at 18
        assert_eq!(bus.in_flight(), 2);
        let at14 = bus.deliver(14);
        assert_eq!(at14.len(), 1);
        assert_eq!(at14[0].barrier_id, 1);
        assert!(bus.deliver(17).is_empty());
        let at18 = bus.deliver(18);
        assert_eq!(at18.len(), 1);
        assert_eq!(at18[0].barrier_id, 2);
        assert_eq!(bus.messages, 2);
    }

    #[test]
    fn idle_bus_restarts_immediately() {
        let mut bus = BarrierBus::new(4);
        bus.send(1, 0, 0, 10);
        bus.deliver(14);
        bus.send(2, 0, 0, 100);
        assert_eq!(bus.deliver(104).len(), 1);
    }

    #[test]
    fn paper_width() {
        assert_eq!(BarrierBus::new(1).data_lines(), 16);
    }

    #[test]
    fn drain_ready_matches_deliver() {
        let mut bus = BarrierBus::new(4);
        bus.send(1, 0, 0, 10); // delivers at 14
        bus.send(2, 0, 1, 10); // serialized → delivers at 18
        assert_eq!(bus.drain_ready(13), 0);
        assert_eq!(bus.drain_ready(14), 1);
        assert_eq!(bus.in_flight(), 1);
        assert_eq!(bus.drain_ready(100), 1);
        assert_eq!(bus.in_flight(), 0);
    }
}

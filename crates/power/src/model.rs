//! The activity-to-energy model and the Table I generator.

use crate::area::{AreaModel, Table1};
use crate::energy::{CoreKind, EnergyParams};
use remap_cpu::{CoreStats, PredStats};
use remap_isa::InstClass;
use remap_mem::{BusStats, CacheStats};
use remap_spl::SplStats;

/// Energy totals for one component or one run, in picojoules.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// Switching energy of counted events.
    pub dynamic_pj: f64,
    /// Leakage over the elapsed cycles.
    pub leakage_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total_pj(&self) -> f64 {
        self.dynamic_pj + self.leakage_pj
    }

    /// Component-wise sum.
    pub fn add(&mut self, other: EnergyBreakdown) {
        self.dynamic_pj += other.dynamic_pj;
        self.leakage_pj += other.leakage_pj;
    }

    /// Energy×delay in pJ·cycles for a run of `cycles`.
    pub fn energy_delay(&self, cycles: u64) -> f64 {
        self.total_pj() * cycles as f64
    }
}

/// Converts simulator activity counters into energy.
#[derive(Debug, Clone, Default)]
pub struct PowerModel {
    /// Per-event energies and leakage constants.
    pub params: EnergyParams,
    /// Area constants.
    pub area: AreaModel,
}

impl PowerModel {
    /// Creates a model with the default 65 nm calibration.
    pub fn new() -> PowerModel {
        PowerModel::default()
    }

    /// Dynamic + leakage energy of one core over its run.
    pub fn core_energy(
        &self,
        kind: CoreKind,
        stats: &CoreStats,
        pred: &PredStats,
    ) -> EnergyBreakdown {
        let p = &self.params;
        let s = kind.pipeline_scale();
        let exec = stats.committed_of(InstClass::IntAlu) as f64 * p.exec_alu
            + stats.committed_of(InstClass::IntMul) as f64 * p.exec_mul
            + stats.committed_of(InstClass::IntDiv) as f64 * p.exec_div
            + stats.committed_of(InstClass::Fp) as f64 * p.exec_fp
            + stats.committed_of(InstClass::Branch) as f64 * p.exec_alu
            + stats.committed_of(InstClass::Load) as f64 * p.exec_alu // AGU
            + stats.committed_of(InstClass::Store) as f64 * p.exec_alu
            + stats.committed_of(InstClass::Atomic) as f64 * (p.exec_alu + p.l1_access)
            // Wrong-path work that executed but never committed.
            + stats.squashed as f64 * 0.5 * p.exec_alu;
        let dynamic_pj = s
            * (stats.fetched as f64 * p.fetch
                + stats.dispatched as f64 * p.dispatch
                + stats.issued as f64 * p.issue
                + stats.regfile_reads as f64 * p.rf_read
                + stats.regfile_writes as f64 * p.rf_write
                + stats.committed as f64 * p.commit)
            + exec
            + pred.lookups as f64 * p.bpred
            + stats.committed_of(InstClass::Spl) as f64 * p.spl_queue
            + stats.committed_of(InstClass::Hwq) as f64 * p.hwq_transfer;
        let leak = match kind {
            CoreKind::Ooo1 => p.leak_core_ooo1,
            CoreKind::Ooo2 => p.leak_core_ooo2,
        };
        EnergyBreakdown {
            dynamic_pj,
            leakage_pj: stats.cycles as f64 * leak,
        }
    }

    /// Dynamic energy of one core's cache hierarchy plus its share of the
    /// bus/memory traffic. (Cache leakage is folded into the core leakage
    /// constant, matching how Table I groups "four cores".)
    pub fn cache_energy(
        &self,
        l1i: &CacheStats,
        l1d: &CacheStats,
        l2: &CacheStats,
    ) -> EnergyBreakdown {
        let p = &self.params;
        let dynamic_pj = (l1i.accesses() + l1d.accesses()) as f64 * p.l1_access
            + l2.accesses() as f64 * p.l2_access
            + (l1d.writebacks + l2.writebacks) as f64 * p.l2_access
            + (l1d.invalidations + l2.invalidations) as f64 * p.l1_access;
        EnergyBreakdown {
            dynamic_pj,
            leakage_pj: 0.0,
        }
    }

    /// Dynamic energy of the shared bus and memory controller.
    pub fn bus_energy(&self, bus: &BusStats) -> EnergyBreakdown {
        let p = &self.params;
        let dynamic_pj = (bus.upgrades + bus.snoops + bus.c2c_transfers) as f64 * p.bus_txn
            + bus.dram_accesses as f64 * p.dram_access;
        EnergyBreakdown {
            dynamic_pj,
            leakage_pj: 0.0,
        }
    }

    /// Dynamic + leakage energy of an SPL fabric with `rows` physical rows
    /// over `core_cycles` elapsed core cycles.
    pub fn spl_energy(&self, stats: &SplStats, rows: u32, core_cycles: u64) -> EnergyBreakdown {
        let p = &self.params;
        let dynamic_pj = stats.row_activations as f64 * p.spl_row
            + stats.results_delivered as f64 * p.spl_queue
            + (stats.compute_ops + stats.barrier_ops) as f64 * (p.spl_queue + p.spl_table);
        let leak_per_cycle = p.leak_spl_total * rows as f64 / p.leak_spl_rows as f64;
        EnergyBreakdown {
            dynamic_pj,
            leakage_pj: core_cycles as f64 * leak_per_cycle,
        }
    }

    /// Dynamic energy of `messages` inter-cluster barrier-bus transfers.
    pub fn barrier_bus_energy(&self, messages: u64) -> EnergyBreakdown {
        EnergyBreakdown {
            dynamic_pj: messages as f64 * self.params.barrier_bus_msg,
            leakage_pj: 0.0,
        }
    }
}

/// Computes Table I: relative area, peak dynamic power, and leakage of the
/// 4-way shared 24-row SPL against four OOO1 cores.
pub fn table1(params: &EnergyParams) -> Table1 {
    let area = AreaModel::default();
    const F_CORE_GHZ: f64 = 2.0;
    const F_SPL_GHZ: f64 = 0.5;
    // Peak dynamic: every core committing at full width vs every SPL row
    // switching every SPL cycle.
    let core_peak_w = F_CORE_GHZ * params.per_inst_pipeline(CoreKind::Ooo1) * 1e-3; // pJ·GHz = mW → W via 1e-3
    let four_core_peak = 4.0 * core_peak_w;
    let spl_rows = 24u32;
    let spl_peak = F_SPL_GHZ * spl_rows as f64 * params.spl_row * 1e-3;
    let four_core_leak = 4.0 * params.leak_core_ooo1 * F_CORE_GHZ * 1e-3;
    let spl_leak = params.leak_spl_total * F_CORE_GHZ * 1e-3;
    Table1 {
        spl_rows,
        spl_rel_area: area.spl(spl_rows) / (4.0 * area.core_ooo1),
        spl_rel_peak_dynamic: spl_peak / four_core_peak,
        spl_rel_leakage: spl_leak / four_core_leak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduces_paper_ratios() {
        let t = table1(&EnergyParams::default());
        assert_eq!(t.spl_rows, 24);
        assert!(
            (t.spl_rel_area - 0.51).abs() < 0.02,
            "area {}",
            t.spl_rel_area
        );
        assert!(
            (t.spl_rel_peak_dynamic - 0.14).abs() < 0.02,
            "peak dyn {}",
            t.spl_rel_peak_dynamic
        );
        assert!(
            (t.spl_rel_leakage - 0.67).abs() < 0.02,
            "leak {}",
            t.spl_rel_leakage
        );
    }

    #[test]
    fn more_activity_means_more_energy() {
        let m = PowerModel::new();
        let s1 = CoreStats {
            cycles: 1000,
            committed: 500,
            fetched: 600,
            dispatched: 550,
            issued: 520,
            ..Default::default()
        };
        let mut s2 = s1.clone();
        s2.committed = 900;
        s2.fetched = 1000;
        s2.dispatched = 950;
        s2.issued = 930;
        let p = PredStats::default();
        let e1 = m.core_energy(CoreKind::Ooo1, &s1, &p);
        let e2 = m.core_energy(CoreKind::Ooo1, &s2, &p);
        assert!(e2.dynamic_pj > e1.dynamic_pj);
        assert_eq!(e1.leakage_pj, e2.leakage_pj, "same cycles, same leakage");
    }

    #[test]
    fn ooo2_costs_more_per_event() {
        let m = PowerModel::new();
        let s = CoreStats {
            cycles: 100,
            committed: 100,
            fetched: 100,
            dispatched: 100,
            issued: 100,
            ..Default::default()
        };
        let p = PredStats::default();
        let e1 = m.core_energy(CoreKind::Ooo1, &s, &p);
        let e2 = m.core_energy(CoreKind::Ooo2, &s, &p);
        assert!(e2.dynamic_pj > e1.dynamic_pj);
        assert!(e2.leakage_pj > e1.leakage_pj);
    }

    #[test]
    fn spl_leakage_scales_with_rows() {
        let m = PowerModel::new();
        let s = SplStats::default();
        let full = m.spl_energy(&s, 24, 1000);
        let half = m.spl_energy(&s, 12, 1000);
        assert!((full.leakage_pj / half.leakage_pj - 2.0).abs() < 1e-9);
    }

    #[test]
    fn energy_delay_composes() {
        let e = EnergyBreakdown {
            dynamic_pj: 10.0,
            leakage_pj: 5.0,
        };
        assert_eq!(e.total_pj(), 15.0);
        assert_eq!(e.energy_delay(4), 60.0);
        let mut a = e;
        a.add(e);
        assert_eq!(a.total_pj(), 30.0);
    }
}

//! Per-event energy and per-structure leakage constants (65 nm, 1.1 V).

/// Which core microarchitecture an energy computation refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreKind {
    /// Single-issue out-of-order core (Table II, OOO1).
    Ooo1,
    /// Dual-issue out-of-order core (Table II, OOO2).
    Ooo2,
}

impl CoreKind {
    /// Scaling of per-event pipeline energies relative to OOO1: the wider
    /// core's rename, wakeup/select and bypass structures are
    /// super-linearly more expensive per operation.
    pub fn pipeline_scale(self) -> f64 {
        match self {
            CoreKind::Ooo1 => 1.0,
            CoreKind::Ooo2 => 1.3,
        }
    }
}

/// Energy and leakage constants. All dynamic energies in picojoules per
/// event; leakage in picojoules per core cycle (2 GHz).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    // --- core pipeline events (OOO1 baseline, scaled by CoreKind) ---------
    /// Per instruction fetched (I-cache interface + fetch buffer).
    pub fetch: f64,
    /// Per instruction decoded/renamed/ROB-allocated.
    pub dispatch: f64,
    /// Per instruction selected and woken in the issue queues.
    pub issue: f64,
    /// Per register-file read port access.
    pub rf_read: f64,
    /// Per register-file write.
    pub rf_write: f64,
    /// Per commit (ROB read + retirement bookkeeping).
    pub commit: f64,
    /// Per branch-predictor lookup/update.
    pub bpred: f64,
    /// Per simple integer ALU operation.
    pub exec_alu: f64,
    /// Per integer multiply.
    pub exec_mul: f64,
    /// Per integer divide.
    pub exec_div: f64,
    /// Per FP operation.
    pub exec_fp: f64,
    // --- memory hierarchy ---------------------------------------------------
    /// Per L1 (I or D) access.
    pub l1_access: f64,
    /// Per L2 access.
    pub l2_access: f64,
    /// Per snoop-bus transaction (upgrade, snoop, cache-to-cache).
    pub bus_txn: f64,
    /// Per main-memory access.
    pub dram_access: f64,
    // --- SPL ------------------------------------------------------------------
    /// Per virtual-row activation (one row computing for one SPL cycle).
    pub spl_row: f64,
    /// Per SPL input/output queue operation.
    pub spl_queue: f64,
    /// Per barrier-table or thread-to-core-table access.
    pub spl_table: f64,
    /// Per inter-cluster barrier-bus message.
    pub barrier_bus_msg: f64,
    /// Per idealized hardware-queue transfer (OOO2+Comm baseline).
    pub hwq_transfer: f64,
    // --- leakage (pJ per core cycle) -----------------------------------------
    /// One OOO1 core including its L1s and private L2 bank.
    pub leak_core_ooo1: f64,
    /// One OOO2 core.
    pub leak_core_ooo2: f64,
    /// The whole 24-row shared SPL (queues and interconnect included).
    pub leak_spl_total: f64,
    /// SPL rows assumed by `leak_spl_total` (leakage scales linearly when a
    /// differently sized fabric is modeled).
    pub leak_spl_rows: u32,
}

impl Default for EnergyParams {
    /// 65 nm constants calibrated to Table I (see crate docs).
    fn default() -> Self {
        EnergyParams {
            fetch: 150.0,
            dispatch: 200.0,
            issue: 140.0,
            rf_read: 45.0,
            rf_write: 70.0,
            commit: 90.0,
            bpred: 40.0,
            exec_alu: 150.0,
            exec_mul: 300.0,
            exec_div: 700.0,
            exec_fp: 350.0,
            l1_access: 100.0,
            l2_access: 400.0,
            bus_txn: 300.0,
            dram_access: 2000.0,
            spl_row: 93.0,
            spl_queue: 25.0,
            spl_table: 8.0,
            barrier_bus_msg: 30.0,
            hwq_transfer: 20.0,
            // 0.5 W per OOO1 core at 2 GHz = 250 pJ/cycle; OOO2 scales with
            // its 1.51× area; SPL leaks 0.67× the four-core total (Table I).
            leak_core_ooo1: 250.0,
            leak_core_ooo2: 377.5,
            leak_spl_total: 670.0,
            leak_spl_rows: 24,
        }
    }
}

impl EnergyParams {
    /// Average dynamic energy of one committed instruction flowing through
    /// the whole OOO1 pipeline (used for peak-power estimates in Table I).
    pub fn per_inst_pipeline(&self, kind: CoreKind) -> f64 {
        let s = kind.pipeline_scale();
        (self.fetch
            + self.dispatch
            + self.issue
            + 2.0 * self.rf_read
            + self.rf_write
            + self.commit
            + self.exec_alu)
            * s
            + self.l1_access // one L1 reference per instruction on average
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_inst_energy_is_about_a_nanojoule() {
        let p = EnergyParams::default();
        let e = p.per_inst_pipeline(CoreKind::Ooo1);
        assert!((700.0..1300.0).contains(&e), "got {e} pJ");
        assert!(p.per_inst_pipeline(CoreKind::Ooo2) > e);
    }

    #[test]
    fn leakage_ratio_matches_table1() {
        let p = EnergyParams::default();
        let four_cores = 4.0 * p.leak_core_ooo1;
        assert!((p.leak_spl_total / four_cores - 0.67).abs() < 0.01);
    }
}

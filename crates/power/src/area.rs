//! Area model (Cacti-style constants) and the Table I generator inputs.

/// Area constants in mm² at 65 nm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// One OOO1 core including L1 caches.
    pub core_ooo1: f64,
    /// One OOO2 core.
    pub core_ooo2: f64,
    /// One SPL row (16 cells + inter-row interconnect share).
    pub spl_row: f64,
    /// Fixed SPL overhead: input/output queues, sharing muxes/tristate
    /// drivers, thread-to-core and barrier tables.
    pub spl_overhead: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        // Calibration (see DESIGN.md §2): the SPL cluster's fabric occupies
        // 0.51× the four OOO1 cores (Table I) — equivalently about two
        // single-issue cores (§V-C.2) — and four OOO2 cores match the area
        // of an SPL cluster (4×OOO1 + SPL), making OOO2 ≈ 1.51× OOO1.
        AreaModel {
            core_ooo1: 5.0,
            core_ooo2: 7.55,
            spl_row: 0.4,
            spl_overhead: 0.6,
        }
    }
}

impl AreaModel {
    /// Total area of an SPL fabric with `rows` rows.
    pub fn spl(&self, rows: u32) -> f64 {
        self.spl_row * rows as f64 + self.spl_overhead
    }

    /// Area of an SPL cluster: four OOO1 cores plus the shared fabric.
    pub fn spl_cluster(&self, rows: u32) -> f64 {
        4.0 * self.core_ooo1 + self.spl(rows)
    }

    /// Area of the OOO2+Comm cluster (four OOO2 cores; the dedicated
    /// communication network is assumed free, as in the paper).
    pub fn ooo2_cluster(&self) -> f64 {
        4.0 * self.core_ooo2
    }

    /// How many extra OOO1 cores fit in the SPL's area (the homogeneous
    /// replacement of §V-C.2; the paper uses two).
    pub fn cores_in_spl_area(&self, rows: u32) -> u32 {
        (self.spl(rows) / self.core_ooo1).round() as u32
    }
}

/// The rows of Table I: relative area and power of a 4-way shared 24-row
/// SPL against four single-issue cores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1 {
    /// SPL rows modeled.
    pub spl_rows: u32,
    /// SPL area / four-core area (paper: 0.51).
    pub spl_rel_area: f64,
    /// SPL peak dynamic power / four-core peak dynamic (paper: 0.14).
    pub spl_rel_peak_dynamic: f64,
    /// SPL leakage / four-core leakage (paper: 0.67).
    pub spl_rel_leakage: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spl_area_is_half_of_four_cores() {
        let a = AreaModel::default();
        let ratio = a.spl(24) / (4.0 * a.core_ooo1);
        assert!((ratio - 0.51).abs() < 0.01, "got {ratio}");
    }

    #[test]
    fn spl_equals_about_two_cores() {
        let a = AreaModel::default();
        assert_eq!(
            a.cores_in_spl_area(24),
            2,
            "§V-C.2: SPL ≈ two single-issue cores"
        );
    }

    #[test]
    fn ooo2_cluster_matches_spl_cluster_area() {
        let a = AreaModel::default();
        let rel = a.ooo2_cluster() / a.spl_cluster(24);
        assert!((rel - 1.0).abs() < 0.01, "got {rel}");
    }
}

//! # remap-power
//!
//! Activity-based power, area, and energy-delay models for the ReMAP
//! reproduction, standing in for the paper's Wattch + Cacti + HotLeakage
//! stack (§IV).
//!
//! The model charges a per-event dynamic energy for every microarchitectural
//! event the simulator counts (fetches, renames, issues, register-file and
//! cache accesses, SPL row activations, bus transactions, …) plus a
//! per-cycle leakage term proportional to structure area. Constants are
//! calibrated for 65 nm at 1.1 V / 2 GHz so that the *relative* area and
//! power of Table I hold:
//!
//! | | SPL rows | total area | peak dynamic | total leakage |
//! |---|---|---|---|---|
//! | four OOO1 cores | — | 1.00 | 1.00 | 1.00 |
//! | 4-way shared SPL | 24 | 0.51 | 0.14 | 0.67 |
//!
//! Those ratios are reproduced by [`table1`] and asserted by this crate's
//! tests; everything the paper reports about energy is relative
//! (energy×delay against a baseline), which an internally consistent
//! activity model preserves.
//!
//! ```
//! use remap_power::{table1, EnergyParams};
//! let t1 = table1(&EnergyParams::default());
//! assert!((t1.spl_rel_area - 0.51).abs() < 0.02);
//! assert!((t1.spl_rel_peak_dynamic - 0.14).abs() < 0.02);
//! assert!((t1.spl_rel_leakage - 0.67).abs() < 0.02);
//! ```

mod area;
mod energy;
mod model;

pub use area::{AreaModel, Table1};
pub use energy::{CoreKind, EnergyParams};
pub use model::{table1, EnergyBreakdown, PowerModel};

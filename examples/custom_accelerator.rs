//! Building your own accelerated pipeline on the public API: a CRC-like
//! streaming checksum is computed in the fabric while raw words stream from
//! a producer core to a consumer core (Figure 1(b) usage with a
//! user-defined function), demonstrating virtualization along the way.
//!
//! ```sh
//! cargo run --release --example custom_accelerator
//! ```

use remap_suite::isa::{Asm, Reg::*};
use remap_suite::spl::{Dest, SplConfig, SplFunction};
use remap_suite::system::{CoreKind, SystemBuilder};

const N: usize = 256;
const IN: i32 = 0x1_0000;
const OUT: i32 = 0x2_0000;

/// One step of the toy CRC: fold a 32-bit word into the running value.
fn crc_step(acc: u64, word: u64) -> u64 {
    let mut v = (acc ^ word) & 0xffff_ffff;
    for _ in 0..4 {
        let bit = v & 1;
        v >>= 1;
        if bit != 0 {
            v ^= 0xedb8_8320;
        }
    }
    v
}

fn producer() -> remap_suite::isa::Program {
    let mut a = Asm::new("producer");
    a.li(R1, 0);
    a.li(R2, N as i32);
    a.li(R3, IN);
    a.label("loop");
    a.slli(R5, R1, 2);
    a.add(R6, R3, R5);
    a.lw(R7, R6, 0);
    a.spl_load(R7, 0, 4);
    a.spl_init(1);
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "loop");
    a.halt();
    a.assemble().expect("producer assembles")
}

fn consumer() -> remap_suite::isa::Program {
    let mut a = Asm::new("consumer");
    a.li(R1, 0);
    a.li(R2, N as i32);
    a.li(R4, OUT);
    a.label("loop");
    a.spl_store(R7); // running checksum after each word
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "loop");
    a.sw(R7, R4, 0); // final checksum
    a.fence();
    a.halt();
    a.assemble().expect("consumer assembles")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut b = SystemBuilder::new();
    b.add_core(CoreKind::Ooo1, producer());
    b.add_core(CoreKind::Ooo1, consumer());
    b.add_spl_cluster(SplConfig::paper(2), vec![0, 1]);

    // A 30-row function on a 24-row fabric: virtualized execution
    // (initiation interval 2) — it still runs, just at reduced throughput.
    // The checksum state lives in the fabric's flip-flops.
    let state = std::sync::atomic::AtomicU64::new(0xffff_ffff);
    b.register_spl(
        1,
        SplFunction::compute("crc", 30, Dest::Thread(1), move |e| {
            use std::sync::atomic::Ordering::Relaxed;
            let acc = crc_step(state.load(Relaxed), e.u32(0) as u64);
            state.store(acc, Relaxed);
            acc
        }),
    );

    let mut sys = b.build();
    // Feed deterministic data and compute the expected checksum on the host.
    let data: Vec<i32> = (0..N as i32)
        .map(|i| i.wrapping_mul(2654435761u32 as i32))
        .collect();
    sys.mem_mut().write_words(IN as u64, &data);
    let expect = data
        .iter()
        .fold(0xffff_ffffu64, |acc, &w| crc_step(acc, w as u32 as u64));

    let report = sys.run(10_000_000)?;
    let got = sys.mem().read_u32(OUT as u64) as u64;
    assert_eq!(got, expect, "fabric checksum must match the host");
    println!("streamed {N} words through a 30-virtual-row function on 24 physical rows");
    println!(
        "checksum = {got:#010x} (matches host), {} cycles",
        report.cycles
    );
    println!(
        "fabric: {} ops, {} row activations (II = 2 from virtualization)",
        sys.spl_stats(0).compute_ops,
        sys.spl_stats(0).row_activations
    );
    Ok(())
}

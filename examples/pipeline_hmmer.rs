//! The paper's flagship communication example (§III-A, Figure 5): the
//! 456.hmmer P7Viterbi inner loop parallelized as a producer/consumer pair
//! with the `mc[k]` dataflow computed *inside* the fabric while it streams
//! to the consumer.
//!
//! Runs the optimized region in four modes and prints the Figure 10-style
//! comparison.
//!
//! ```sh
//! cargo run --release --example pipeline_hmmer
//! ```

use remap_suite::workloads::comm::CommBench;
use remap_suite::workloads::CommMode;

fn main() {
    const M: usize = 1024;
    let bench = CommBench::Hmmer;
    println!("456.hmmer P7Viterbi, M = {M} rows (validated against a host oracle)\n");
    println!(
        "{:<16} {:>12} {:>10} {:>12}",
        "mode", "cycles", "speedup", "energy (uJ)"
    );
    let base = bench.run(CommMode::SeqOoo1, M).expect("baseline");
    for mode in [
        CommMode::SeqOoo1,
        CommMode::Comp1T,
        CommMode::Comm2T,
        CommMode::CompComm2T,
        CommMode::Ooo2Comm,
        CommMode::SwQueue2T,
    ] {
        let m = bench.run(mode, M).expect("mode runs and validates");
        println!(
            "{:<16} {:>12} {:>9.2}x {:>12.2}",
            mode.label(),
            m.cycles,
            base.cycles as f64 / m.cycles as f64,
            m.energy_pj / 1e6,
        );
    }
    println!();
    println!("2Th+CompComm is the paper's headline mode: the SPL computes mc[k]");
    println!("while routing it to the consumer, which only computes dc[k] —");
    println!("balancing the pipeline and cutting both threads' instruction counts.");
}

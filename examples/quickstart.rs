//! Quickstart: build a one-core ReMAP system, configure an SPL function,
//! and run a program that computes in the fabric (Figure 1(a) usage).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use remap_suite::isa::{Asm, Reg::*};
use remap_suite::spl::{Dest, SplConfig, SplFunction};
use remap_suite::system::{CoreKind, SystemBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Write a small program with the assembler. The SPL extension
    //    instructions stage operands (`spl_load`), request a configured
    //    function (`spl_init`), and pop the result (`spl_store`).
    let mut a = Asm::new("quickstart");
    a.li(R1, 1234);
    a.li(R2, 5678);
    a.spl_load(R1, 0, 4); // stage r1 at bytes 0..4 of the input entry
    a.spl_load(R2, 4, 4); // stage r2 at bytes 4..8
    a.spl_init(1); // run SPL configuration #1
    a.spl_store(R3); // pop the result
    a.halt();
    let program = a.assemble()?;
    println!("{}", program.disassemble());

    // 2. Assemble the system: one OOO1 core sharing a 24-row SPL fabric.
    let mut b = SystemBuilder::new();
    b.add_core(CoreKind::Ooo1, program);
    b.add_spl_cluster(SplConfig::paper(1), vec![0]);

    // 3. Configure the fabric: a 6-row function computing a*b + a + b.
    b.register_spl(
        1,
        SplFunction::compute("mad", 6, Dest::SelfCore, |e| {
            let a = e.u32(0) as u64;
            let b = e.u32(4) as u64;
            a * b + a + b
        }),
    );

    // 4. Run to completion and inspect the architectural state.
    let mut sys = b.build();
    let report = sys.run(100_000)?;
    println!("r3 = {}", sys.reg(0, R3));
    assert_eq!(sys.reg(0, R3), 1234 * 5678 + 1234 + 5678);
    println!(
        "completed in {} cycles ({} instructions, {} SPL ops)",
        report.cycles,
        report.total_committed(),
        sys.spl_stats(0).compute_ops
    );
    Ok(())
}

//! The paper's barrier example (§III-B, Figure 7): parallel Dijkstra with
//! software barriers, ReMAP fabric barriers, and ReMAP barriers with the
//! global minimum computed inside the fabric during synchronization —
//! which also eliminates one of the two barriers per step.
//!
//! ```sh
//! cargo run --release --example barrier_dijkstra
//! ```

use remap_suite::workloads::barriers::{BarrierBench, BarrierMode};

fn main() {
    const NODES: usize = 120;
    let bench = BarrierBench::Dijkstra;
    println!("Dijkstra shortest paths, {NODES} nodes (validated against a host oracle)\n");
    println!(
        "{:<20} {:>12} {:>14} {:>10}",
        "mode", "cycles", "cycles/step", "speedup"
    );
    let base = bench.run(BarrierMode::Seq, NODES).expect("sequential");
    for mode in [
        BarrierMode::Seq,
        BarrierMode::Sw(4),
        BarrierMode::Sw(8),
        BarrierMode::Remap(4),
        BarrierMode::Remap(8),
        BarrierMode::RemapComp(4),
        BarrierMode::RemapComp(8),
        BarrierMode::RemapComp(16),
    ] {
        let m = bench.run(mode, NODES).expect("mode runs and validates");
        println!(
            "{:<20} {:>12} {:>14.0} {:>9.2}x",
            mode.label(),
            m.cycles,
            m.cycles as f64 / NODES as f64,
            base.cycles as f64 / m.cycles as f64,
        );
    }
    println!();
    println!("Barrier+Comp computes the global minimum in the fabric while the");
    println!("threads synchronize; with 16 threads it spans four SPL clusters and");
    println!("uses the paper's three-stage regional scheme over the barrier bus.");
}

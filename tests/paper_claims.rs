//! Integration tests asserting the paper's qualitative claims at reduced
//! problem sizes (the full-size sweeps live in the bench targets).

use remap_suite::workloads::barriers::{BarrierBench, BarrierMode};
use remap_suite::workloads::comm::CommBench;
use remap_suite::workloads::comp::CompBench;
use remap_suite::workloads::{CommMode, CompMode};

const N: usize = 512;

/// §V-A/Table I premise: the SPL accelerates branch-heavy bit-twiddling
/// kernels well beyond what the wider core achieves.
#[test]
fn spl_beats_wider_core_on_fmult() {
    let seq = CompBench::G721Enc.run(CompMode::SeqOoo1, N).unwrap();
    let o2 = CompBench::G721Enc.run(CompMode::SeqOoo2, N).unwrap();
    let spl = CompBench::G721Enc.run(CompMode::Spl, N).unwrap();
    assert!(o2.cycles < seq.cycles, "OOO2 beats OOO1");
    assert!(spl.cycles < o2.cycles, "SPL beats OOO2");
}

/// Figure 10's core ordering for the flagship hmmer parallelization:
/// CompComm > Comm-only > baseline.
#[test]
fn hmmer_mode_ordering() {
    let seq = CommBench::Hmmer.run(CommMode::SeqOoo1, N).unwrap();
    let comm = CommBench::Hmmer.run(CommMode::Comm2T, N).unwrap();
    let cc = CommBench::Hmmer.run(CommMode::CompComm2T, N).unwrap();
    assert!(comm.cycles < seq.cycles);
    assert!(cc.cycles < comm.cycles);
}

/// §V-B: software queues lose to the sequential baseline on every
/// communicating benchmark.
#[test]
fn software_queues_always_lose() {
    for b in CommBench::ALL {
        let seq = b.run(CommMode::SeqOoo1, 256).unwrap();
        let swq = b.run(CommMode::SwQueue2T, 256).unwrap();
        assert!(
            swq.cycles > seq.cycles,
            "{}: swq {} should exceed seq {}",
            b.name(),
            swq.cycles,
            seq.cycles
        );
    }
}

/// Figure 12: ReMAP barriers beat software barriers for every barrier
/// workload at 8 threads.
#[test]
fn remap_barriers_beat_sw_everywhere() {
    for (bench, n) in [
        (BarrierBench::Ll2, 64),
        (BarrierBench::Ll3, 128),
        (BarrierBench::Ll6, 64),
        (BarrierBench::Dijkstra, 40),
    ] {
        let sw = bench.run(BarrierMode::Sw(8), n).unwrap();
        let remap = bench.run(BarrierMode::Remap(8), n).unwrap();
        assert!(
            remap.cycles < sw.cycles,
            "{}: remap {} !< sw {}",
            bench.name(),
            remap.cycles,
            sw.cycles
        );
    }
}

/// Figure 13 shape: Barrier+Comp helps dijkstra most at small problem
/// sizes (synchronization-dominated), and the benefit shrinks as the
/// problem grows.
#[test]
fn dijkstra_comp_benefit_shrinks_with_size() {
    let gain = |n: usize| {
        let bar = BarrierBench::Dijkstra
            .run(BarrierMode::Remap(8), n)
            .unwrap();
        let cmp = BarrierBench::Dijkstra
            .run(BarrierMode::RemapComp(8), n)
            .unwrap();
        bar.cycles as f64 / cmp.cycles as f64
    };
    let small = gain(20);
    let large = gain(160);
    assert!(small > 1.0, "comp must help at small sizes (got {small})");
    assert!(
        small > large,
        "benefit should shrink with size ({small} vs {large})"
    );
}

/// Figure 14 shape: energy×delay break-even requires larger problems than
/// performance break-even (LL3, 8 threads).
#[test]
fn ed_breakeven_lags_performance_breakeven() {
    let mut perf_break = None;
    let mut ed_break = None;
    for &n in &[32usize, 64, 128, 256, 512] {
        let seq = BarrierBench::Ll3.run(BarrierMode::Seq, n).unwrap();
        let par = BarrierBench::Ll3.run(BarrierMode::Remap(8), n).unwrap();
        if perf_break.is_none() && par.cycles < seq.cycles {
            perf_break = Some(n);
        }
        if ed_break.is_none() && par.ed() < seq.ed() {
            ed_break = Some(n);
        }
    }
    let p = perf_break.expect("performance must break even in range");
    // Never breaking even in range is also consistent with the paper.
    if let Some(e) = ed_break {
        assert!(e >= p, "ED break-even ({e}) must not precede perf ({p})");
    }
}

/// Every workload's functional oracle is honored in its ReMAP mode (the
/// crate-level tests cover every mode; this guards the public entry
/// points end to end at a different size).
#[test]
fn remap_modes_validate_at_alternate_sizes() {
    for b in CompBench::ALL {
        b.run(CompMode::Spl, 160).unwrap();
    }
    for b in CommBench::ALL {
        b.run(CommMode::CompComm2T, 192).unwrap();
    }
    for (b, n) in [
        (BarrierBench::Ll2, 16),
        (BarrierBench::Ll3, 32),
        (BarrierBench::Ll6, 12),
        (BarrierBench::Dijkstra, 16),
    ] {
        b.run(BarrierMode::Remap(2), n).unwrap();
    }
}

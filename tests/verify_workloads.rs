//! Tier-1 gate: every registered workload program must verify clean, and
//! verifier-clean communication/barrier bundles must complete under
//! `System::run` without a `RunError`.

use remap_suite::verify::render;
use remap_suite::workloads::barriers::{BarrierBench, BarrierMode};
use remap_suite::workloads::comm::CommBench;
use remap_suite::workloads::comp::CompBench;
use remap_suite::workloads::{CommMode, CompMode};

const COMP_MODES: [CompMode; 3] = [CompMode::SeqOoo1, CompMode::SeqOoo2, CompMode::Spl];
const COMM_MODES: [CommMode; 7] = [
    CommMode::SeqOoo1,
    CommMode::SeqOoo2,
    CommMode::Comp1T,
    CommMode::Comm2T,
    CommMode::CompComm2T,
    CommMode::Ooo2Comm,
    CommMode::SwQueue2T,
];

fn barrier_modes(b: BarrierBench) -> Vec<BarrierMode> {
    let mut m = vec![
        BarrierMode::Seq,
        BarrierMode::Sw(4),
        BarrierMode::Remap(4),
        BarrierMode::HwIdeal(4),
    ];
    if b.supports_comp() {
        m.push(BarrierMode::RemapComp(4));
    }
    m
}

fn assert_clean(label: &str, sys: &remap_suite::system::System) {
    let diags = sys.verify();
    assert!(
        diags.is_empty(),
        "{label} has findings:\n{}",
        render(&diags)
    );
}

#[test]
fn every_computation_workload_verifies_clean() {
    for b in CompBench::ALL {
        for m in COMP_MODES {
            assert_clean(&format!("{} {m:?}", b.name()), &b.build(m, 64));
        }
    }
}

#[test]
fn every_communication_workload_verifies_clean() {
    for b in CommBench::ALL {
        for m in COMM_MODES {
            assert_clean(&format!("{} {m:?}", b.name()), &b.build(m, 64));
        }
    }
}

#[test]
fn every_barrier_workload_verifies_clean() {
    for b in BarrierBench::ALL {
        let n = match b {
            BarrierBench::Dijkstra => 20,
            _ => 32,
        };
        for m in barrier_modes(b) {
            assert_clean(&format!("{} {m:?}", b.name()), &b.build(m, n));
        }
    }
}

/// The full labeled catalog — 88 canonical configurations plus the
/// extended multi-cluster grids and fault-injected plans — verifies with
/// zero diagnostics: the interprocedural message-flow lints (RV015–RV022)
/// must hold without false positives over every shape the paper evaluates.
#[test]
fn canonical_and_extended_catalogs_verify_clean() {
    let canonical = remap_suite::workloads::catalog::canonical();
    assert_eq!(canonical.len(), 88);
    let extended = remap_suite::workloads::catalog::extended();
    assert!(!extended.is_empty());
    for (label, sys) in canonical.iter().chain(extended.iter()) {
        assert_clean(label, sys);
    }
}

/// The static guarantee the verifier is meant to provide: a clean
/// communication or barrier bundle actually completes.
#[test]
fn clean_comm_bundles_complete_without_runerror() {
    for b in [CommBench::Wc, CommBench::Adpcm] {
        for m in [CommMode::Comm2T, CommMode::CompComm2T] {
            let mut sys = b.build(m, 64);
            assert_clean(&format!("{} {m:?}", b.name()), &sys);
            sys.run(20_000_000)
                .unwrap_or_else(|e| panic!("{} {m:?} failed: {e:?}", b.name()));
        }
    }
}

#[test]
fn clean_barrier_bundles_complete_without_runerror() {
    for b in [BarrierBench::Ll3, BarrierBench::Dijkstra] {
        let n = match b {
            BarrierBench::Dijkstra => 20,
            _ => 32,
        };
        for m in [BarrierMode::Remap(4), BarrierMode::RemapComp(4)] {
            let mut sys = b.build(m, n);
            assert_clean(&format!("{b:?} {m:?}"), &sys);
            sys.run(20_000_000)
                .unwrap_or_else(|e| panic!("{b:?} {m:?} failed: {e:?}"));
        }
    }
}

//! Cross-crate integration tests: the three Figure 1 usage modes end to
//! end, determinism, and energy accounting.

use remap_suite::isa::{Asm, Reg::*};
use remap_suite::power::PowerModel;
use remap_suite::spl::{Dest, SplConfig, SplFunction};
use remap_suite::system::{CoreKind, SystemBuilder};

/// Figure 1(a): four threads independently computing in the shared fabric.
#[test]
fn figure1a_individual_computation() {
    let mk = |seed: i32| {
        let mut a = Asm::new("f");
        a.li(R1, seed);
        a.li(R2, 0);
        a.li(R3, 16);
        a.label("loop");
        a.spl_load(R1, 0, 4);
        a.spl_init(1);
        a.spl_store(R1);
        a.addi(R2, R2, 1);
        a.bne(R2, R3, "loop");
        a.halt();
        a.assemble().unwrap()
    };
    let mut b = SystemBuilder::new();
    for i in 0..4 {
        b.add_core(CoreKind::Ooo1, mk(i + 1));
    }
    b.add_spl_cluster(SplConfig::paper(4), vec![0, 1, 2, 3]);
    b.register_spl(
        1,
        SplFunction::compute("x2+1", 5, Dest::SelfCore, |e| (2 * e.u32(0) + 1) as u64),
    );
    let mut sys = b.build();
    sys.run(1_000_000).unwrap();
    for i in 0..4 {
        // x -> 2x+1 applied 16 times: x_k = 2^16 (x0 + 1) - 1.
        let expect = (1i64 << 16) * (i as i64 + 2) - 1;
        assert_eq!(sys.reg(i, R1), expect, "core {i}");
    }
    assert_eq!(sys.spl_stats(0).compute_ops, 64);
}

/// Figure 1(b): two producer→consumer pairs temporally sharing one fabric.
#[test]
fn figure1b_two_pairs_share_fabric() {
    let producer = |items: i32| {
        let mut a = Asm::new("p");
        a.li(R1, 0);
        a.li(R2, items);
        a.label("loop");
        a.spl_load(R1, 0, 4);
        a.spl_init(1);
        a.addi(R1, R1, 1);
        a.bne(R1, R2, "loop");
        a.halt();
        a.assemble().unwrap()
    };
    let consumer = |items: i32| {
        let mut a = Asm::new("c");
        a.li(R1, 0);
        a.li(R2, items);
        a.li(R10, 0);
        a.label("loop");
        a.spl_store(R3);
        a.add(R10, R10, R3);
        a.addi(R1, R1, 1);
        a.bne(R1, R2, "loop");
        a.halt();
        a.assemble().unwrap()
    };
    let mut b = SystemBuilder::new();
    b.add_core(CoreKind::Ooo1, producer(32)); // thread 0 → thread 1
    b.add_core(CoreKind::Ooo1, consumer(32));
    b.add_core(CoreKind::Ooo1, producer(32)); // thread 2 → thread 3
    b.add_core(CoreKind::Ooo1, consumer(32));
    b.add_spl_cluster(SplConfig::paper(4), vec![0, 1, 2, 3]);
    // Pair-specific destination threads need two configurations.
    b.register_spl(
        1,
        SplFunction::compute("sq_a", 6, Dest::Thread(1), |e| {
            let x = e.u32(0) as u64;
            x * x
        }),
    );
    let sys = b.build();
    // Rebind config for the second pair by registering a second function id
    // is cleaner, but here both producers use cfg 1 → both consumers must be
    // resolved per-producer. Instead run pair 2 with its own config:
    drop(sys);
    let mut b = SystemBuilder::new();
    b.add_core(CoreKind::Ooo1, producer(32));
    b.add_core(CoreKind::Ooo1, consumer(32));
    b.add_core(CoreKind::Ooo1, {
        let mut a = Asm::new("p2");
        a.li(R1, 0);
        a.li(R2, 32);
        a.label("loop");
        a.spl_load(R1, 0, 4);
        a.spl_init(2);
        a.addi(R1, R1, 1);
        a.bne(R1, R2, "loop");
        a.halt();
        a.assemble().unwrap()
    });
    b.add_core(CoreKind::Ooo1, consumer(32));
    b.add_spl_cluster(SplConfig::paper(4), vec![0, 1, 2, 3]);
    b.register_spl(
        1,
        SplFunction::compute("sq_a", 6, Dest::Thread(1), |e| {
            let x = e.u32(0) as u64;
            x * x
        }),
    );
    b.register_spl(
        2,
        SplFunction::compute("sq_b", 6, Dest::Thread(3), |e| {
            let x = e.u32(0) as u64;
            x * x + 1
        }),
    );
    let mut sys = b.build();
    sys.run(1_000_000).unwrap();
    let sq_sum: i64 = (0..32).map(|x: i64| x * x).sum();
    assert_eq!(sys.reg(1, R10), sq_sum);
    assert_eq!(sys.reg(3, R10), sq_sum + 32);
}

/// Figure 1(c): barrier with integrated computation across the fabric.
#[test]
fn figure1c_barrier_with_global_function() {
    let mk = |v: i32| {
        let mut a = Asm::new("b");
        a.li(R1, v);
        // Two successive barrier episodes with a global max.
        for _ in 0..2 {
            a.spl_load(R1, 0, 4);
            a.spl_init(7);
            a.spl_store(R1);
            a.fence();
            a.addi(R1, R1, 1); // everyone bumps the shared max by one
        }
        a.halt();
        a.assemble().unwrap()
    };
    let mut b = SystemBuilder::new();
    for i in 0..4 {
        b.add_core(CoreKind::Ooo1, mk(10 * (i + 1)));
    }
    b.add_spl_cluster(SplConfig::paper(4), vec![0, 1, 2, 3]);
    b.register_spl(
        7,
        SplFunction::barrier("gmax", 5, |es| {
            es.iter().map(|e| e.u32(0)).max().unwrap_or(0) as u64
        }),
    );
    b.barrier_spec(7, 1, 4);
    let mut sys = b.build();
    sys.run(1_000_000).unwrap();
    // Episode 1: max(10,20,30,40)=40 → everyone holds 41.
    // Episode 2: max(41,...)=41 → everyone holds 42.
    for i in 0..4 {
        assert_eq!(sys.reg(i, R1), 42, "core {i}");
    }
    assert_eq!(sys.spl_stats(0).barrier_ops, 2);
}

/// The simulator is deterministic: identical builds produce identical
/// cycle counts and energies.
#[test]
fn deterministic_replay() {
    let run = || {
        let mut a = Asm::new("d");
        a.li(R1, 0);
        a.li(R2, 500);
        a.li(R3, 0x9000);
        a.label("loop");
        a.slli(R5, R1, 2);
        a.add(R6, R3, R5);
        a.sw(R1, R6, 0);
        a.lw(R7, R6, 0);
        a.add(R8, R8, R7);
        a.addi(R1, R1, 1);
        a.bne(R1, R2, "loop");
        a.halt();
        let mut b = SystemBuilder::new();
        b.add_core(CoreKind::Ooo1, a.assemble().unwrap());
        let mut sys = b.build();
        let r = sys.run(1_000_000).unwrap();
        (r.cycles, sys.energy(&PowerModel::new()).total_pj())
    };
    let (c1, e1) = run();
    let (c2, e2) = run();
    assert_eq!(c1, c2);
    assert_eq!(e1, e2);
}

/// Energy accounting: leakage accrues with time even when idle-ish, and a
/// system with an SPL cluster leaks more than one without.
#[test]
fn energy_accounting_sanity() {
    let prog = || {
        let mut a = Asm::new("e");
        a.li(R1, 0);
        a.li(R2, 200);
        a.label("loop");
        a.addi(R1, R1, 1);
        a.bne(R1, R2, "loop");
        a.halt();
        a.assemble().unwrap()
    };
    let model = PowerModel::new();
    let mut b1 = SystemBuilder::new();
    b1.add_core(CoreKind::Ooo1, prog());
    let mut s1 = b1.build();
    s1.run(100_000).unwrap();
    let e1 = s1.energy(&model);

    let mut b2 = SystemBuilder::new();
    b2.add_core(CoreKind::Ooo1, prog());
    b2.add_spl_cluster(SplConfig::paper(1), vec![0]);
    let mut s2 = b2.build();
    s2.run(100_000).unwrap();
    let e2 = s2.energy(&model);

    assert!(e1.dynamic_pj > 0.0 && e1.leakage_pj > 0.0);
    assert!(
        e2.leakage_pj > e1.leakage_pj,
        "an idle fabric still leaks (no power gating in the paper's model)"
    );
}

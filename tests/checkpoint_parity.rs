//! Tier-1 gate for deterministic checkpoint/restore: running a workload
//! to an arbitrary cycle, snapshotting, restoring into a FRESH system of
//! identical configuration, and continuing must be bit-identical to the
//! uninterrupted run — across the canonical configuration matrix, under
//! fault injection, and on the 16/36/64-core grids with the directory on
//! and off.
//!
//! Cut points land wherever the cycle fraction falls: `run_until` clamps
//! bulk skips at the target, so on barrier workloads the snapshot is
//! routinely taken *inside* a quiescence window, and on busy workloads
//! outside one — both must restore exactly.
//!
//! "Bit-identical" covers everything a run can report except
//! `skipped_cycles` (a resumed run re-plans its bulk skips from the
//! restore point, so skip *accounting* legitimately differs while every
//! architectural statistic must not) and `wall_seconds` (host timing).

use remap_suite::system::{RunReport, System};
use remap_suite::workloads::barriers::{BarrierBench, BarrierMode};
use remap_suite::workloads::comm::CommBench;
use remap_suite::workloads::comp::CompBench;
use remap_suite::workloads::{CommMode, CompMode};

const MAX_CYCLES: u64 = 50_000_000;

const COMP_MODES: [CompMode; 3] = [CompMode::SeqOoo1, CompMode::SeqOoo2, CompMode::Spl];
const COMM_MODES: [CommMode; 7] = [
    CommMode::SeqOoo1,
    CommMode::SeqOoo2,
    CommMode::Comp1T,
    CommMode::Comm2T,
    CommMode::CompComm2T,
    CommMode::Ooo2Comm,
    CommMode::SwQueue2T,
];

fn barrier_modes(b: BarrierBench) -> Vec<BarrierMode> {
    let mut m = vec![
        BarrierMode::Seq,
        BarrierMode::Sw(4),
        BarrierMode::Remap(4),
        BarrierMode::HwIdeal(4),
    ];
    if b.supports_comp() {
        m.push(BarrierMode::RemapComp(4));
    }
    m
}

/// Asserts every architectural observable of two completed runs matches.
fn assert_same_observables(label: &str, a: &System, ra: &RunReport, b: &System, rb: &RunReport) {
    assert_eq!(ra.cycles, rb.cycles, "{label}: cycle count diverged");
    for c in 0..a.n_cores() {
        assert_eq!(
            ra.core_stats[c], rb.core_stats[c],
            "{label}: core {c} stats diverged"
        );
        assert_eq!(
            a.pred_stats(c),
            b.pred_stats(c),
            "{label}: core {c} predictor stats diverged"
        );
        assert_eq!(
            a.hierarchy().cache_stats(c),
            b.hierarchy().cache_stats(c),
            "{label}: core {c} cache stats diverged"
        );
    }
    assert_eq!(
        a.hierarchy().bus_stats(),
        b.hierarchy().bus_stats(),
        "{label}: coherence-bus stats diverged"
    );
    for cl in 0..a.n_clusters() {
        assert_eq!(
            a.spl_stats(cl),
            b.spl_stats(cl),
            "{label}: cluster {cl} SPL stats diverged"
        );
    }
    assert_eq!(ra.faults, rb.faults, "{label}: fault counters diverged");
    assert_eq!(ra.mlp, rb.mlp, "{label}: MLP counters diverged");
    assert_eq!(ra.dir, rb.dir, "{label}: directory counters diverged");
}

/// The checkpoint contract for one configuration. `reference` runs
/// uninterrupted; `donor` runs to each cut cycle and is snapshotted; each
/// snapshot restores into one of the `fresh` (never-run) systems, which
/// then continues to completion. Finally the donor itself continues —
/// snapshotting must not perturb it. Returns the total `skipped_cycles`
/// of the resumed runs (for vacuity checks at the call sites).
fn assert_checkpoint_parity(
    label: &str,
    mut reference: System,
    mut donor: System,
    fresh: Vec<System>,
) -> u64 {
    let rr = reference
        .run(MAX_CYCLES)
        .unwrap_or_else(|e| panic!("{label} (reference) failed: {e:?}"));
    let slices = fresh.len() as u64 + 1;
    let mut resumed_skipped = 0;
    for (k, mut f) in fresh.into_iter().enumerate() {
        let cut = (rr.cycles * (k as u64 + 1) / slices).max(1);
        assert!(
            donor.run_until(cut),
            "{label}: donor halted before cut cycle {cut}"
        );
        assert_eq!(
            donor.cycle(),
            cut,
            "{label}: run_until must clamp bulk skips exactly at the cut"
        );
        let snap = donor.snapshot();
        f.restore(&snap)
            .unwrap_or_else(|e| panic!("{label}: restore at cycle {cut} refused: {e}"));
        let rf = f
            .run(MAX_CYCLES)
            .unwrap_or_else(|e| panic!("{label} (resumed from {cut}) failed: {e:?}"));
        resumed_skipped += rf.skipped_cycles;
        assert_same_observables(&format!("{label} cut@{cut}"), &reference, &rr, &f, &rf);
    }
    let rd = donor
        .run(MAX_CYCLES)
        .unwrap_or_else(|e| panic!("{label} (donor continue) failed: {e:?}"));
    assert_same_observables(&format!("{label} donor"), &reference, &rr, &donor, &rd);
    resumed_skipped
}

#[test]
fn computation_workloads_checkpoint_parity() {
    for b in CompBench::ALL {
        for m in COMP_MODES {
            let label = format!("{} {m:?}", b.name());
            let build = || b.build(m, 64);
            assert_checkpoint_parity(&label, build(), build(), vec![build(), build()]);
        }
    }
}

#[test]
fn communication_workloads_checkpoint_parity() {
    for b in CommBench::ALL {
        for m in COMM_MODES {
            let label = format!("{} {m:?}", b.name());
            let build = || b.build(m, 64);
            assert_checkpoint_parity(&label, build(), build(), vec![build(), build()]);
        }
    }
}

#[test]
fn barrier_workloads_checkpoint_parity_including_mid_skip_cuts() {
    let mut resumed_skipped = 0;
    for b in BarrierBench::ALL {
        let n = match b {
            BarrierBench::Dijkstra => 20,
            _ => 32,
        };
        for m in barrier_modes(b) {
            let label = format!("{b:?} {m:?}");
            let build = || b.build(m, n);
            resumed_skipped +=
                assert_checkpoint_parity(&label, build(), build(), vec![build(), build()]);
        }
    }
    // Barrier workloads spend most of their time quiescent; resumed runs
    // must keep bulk-skipping, or the mid-skip claim is vacuous.
    assert!(
        resumed_skipped > 0,
        "resumed barrier runs bulk-advanced zero cycles"
    );
}

/// Restoring must rebuild the event-indexed fault streams exactly: the
/// resumed half of the run draws the same injections the uninterrupted
/// run does, and the restored counters carry the pre-cut half.
#[test]
fn faulted_workloads_checkpoint_parity() {
    use remap_suite::fault::{FaultPlan, SiteCfg};

    let mut plan = FaultPlan::quiet(0xFA_17);
    plan.spl_bitflip = SiteCfg::rate(50_000);
    plan.hwq_drop = SiteCfg::rate(50_000);
    plan.hwq_dup = SiteCfg::rate(25_000);
    plan.hwq_delay = SiteCfg::rate(25_000);
    plan.barrier_delay = SiteCfg::rate(100_000);
    plan.cache_corrupt = SiteCfg::rate(50_000);

    let mut total_injected = 0;
    let mut run = |label: String, build: &dyn Fn() -> System| {
        let faulted = || {
            let mut sys = build();
            sys.set_fault_plan(&plan);
            sys
        };
        let mut reference = faulted();
        let rr = reference
            .run(MAX_CYCLES)
            .unwrap_or_else(|e| panic!("{label} failed: {e:?}"));
        total_injected += rr.faults.total_injected();
        assert_checkpoint_parity(&label, faulted(), faulted(), vec![faulted(), faulted()]);
    };
    for b in [CompBench::ALL[0], CompBench::ALL[3]] {
        run(format!("{} Spl faulted", b.name()), &|| {
            b.build(CompMode::Spl, 64)
        });
    }
    for (b, m) in [
        (CommBench::ALL[0], CommMode::CompComm2T),
        (CommBench::ALL[2], CommMode::Ooo2Comm),
    ] {
        run(format!("{} {m:?} faulted", b.name()), &|| b.build(m, 64));
    }
    for b in [BarrierBench::Ll2, BarrierBench::Dijkstra] {
        let n = match b {
            BarrierBench::Dijkstra => 20,
            _ => 32,
        };
        run(format!("{b:?} Remap(4) faulted"), &|| {
            b.build(BarrierMode::Remap(4), n)
        });
    }
    assert!(
        total_injected > 0,
        "faulted checkpoint grid injected zero faults; the check is vacuous"
    );
}

/// Grid scale-out: snapshots must carry the banked sharer directory,
/// per-bank busy windows, and staggered cross-cluster releases of the
/// 16/36/64-core meshes — with the directory on and (broadcast
/// reference) off.
#[test]
fn grid_checkpoint_parity_16_36_64_cores() {
    let b = BarrierBench::Ll3;
    for p in [16, 36, 64] {
        let m = BarrierMode::Remap(p);
        let build = || b.build(m, 64);
        assert_checkpoint_parity(&format!("{b:?} {m:?}"), build(), build(), vec![build()]);
    }
    for p in [16, 36] {
        let m = BarrierMode::Remap(p);
        let build = || {
            let mut sys = b.build(m, 64);
            sys.set_dir(false);
            sys
        };
        assert_checkpoint_parity(
            &format!("{b:?} {m:?} no-dir"),
            build(),
            build(),
            vec![build()],
        );
    }
}

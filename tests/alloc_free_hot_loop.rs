//! The simulator's per-cycle path must not touch the heap once warmed up:
//! `Core::fetch` reuses its fetch-group scratch, `SplFabric::tick_into`
//! drains into a caller-owned buffer, and `System::step` maintains its
//! running-core list and committed counter in place. This test installs a
//! counting global allocator, warms a computation workload past every
//! buffer-growth transient, and then asserts that thousands of further
//! cycles allocate nothing.
//!
//! Kept in its own integration-test binary so no concurrent test pollutes
//! the allocation counter.

use remap_workloads::barriers::{BarrierBench, BarrierMode};
use remap_workloads::comp::CompBench;
use remap_workloads::CompMode;
use std::alloc::{GlobalAlloc, Layout, System as SystemAlloc};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The allocation counter is process-global, so the tests in this binary
/// must not overlap; each takes this lock for its whole body.
static SERIAL: Mutex<()> = Mutex::new(());

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        SystemAlloc.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        SystemAlloc.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        SystemAlloc.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_cycles_do_not_allocate() {
    let _guard = SERIAL.lock().unwrap();
    // An SPL-active computation workload: every cycle exercises fetch,
    // dispatch/issue/commit, the fabric tick, and the stats plumbing.
    let mut sys = CompBench::ALL[0].build(CompMode::Spl, 4096);

    // Warm-up: long enough for the fetch buffer, ROB, store buffer, SPL
    // queues, event scratch, and cache metadata to reach their
    // steady-state capacities.
    let mut warm = 0u32;
    while warm < 20_000 && !sys.all_halted() {
        sys.step();
        warm += 1;
    }
    assert!(
        !sys.all_halted(),
        "workload halted during warm-up; pick a larger problem size"
    );

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut measured = 0u32;
    while measured < 5_000 && !sys.all_halted() {
        sys.step();
        measured += 1;
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert!(
        measured >= 5_000,
        "workload halted during the measured window after {measured} cycles"
    );
    assert_eq!(
        after - before,
        0,
        "steady-state cycles allocated {} times over {measured} cycles",
        after - before
    );
}

/// The memory-system fast paths — the word-granular `FlatMem` accessors
/// behind `inst_fetch`, the MRU-way tag lookup, and the L1-hit fast lane
/// that answers loads/stores without consulting MESI — must allocate
/// nothing once the touched pages and cache metadata exist. Drives the
/// `Hierarchy` ports directly (hits, misses with eviction, cross-core
/// sharing, and atomics) so the assertion covers the fast lane *and* its
/// fallback into the coherence path.
#[test]
fn hierarchy_fast_paths_do_not_allocate() {
    use remap_mem::{Hierarchy, HierarchyConfig, PC_NONE};

    let _guard = SERIAL.lock().unwrap();
    let mut h = Hierarchy::new(2, HierarchyConfig::default());
    h.set_mlp(true); // robust against REMAP_NO_MLP leaking into the test env

    // Warm-up: touch the whole working set from both cores so every page
    // of the arena is resident and both L1/L2 tag arrays are populated.
    let warm = |h: &mut Hierarchy, t0: u64| {
        let mut t = t0;
        for i in 0..4096u64 {
            let addr = (i * 36) % 131072;
            t += h.store(0, addr, 4, i, t) as u64;
            let (_, l) = h.load(1, addr, 4, PC_NONE, t);
            t += l as u64;
            t += h.inst_fetch(0, (i * 4) % 65536, t) as u64;
            let (_, l) = h.amo_add(1, 131072 + (i % 64) * 8, 1, t);
            t += l as u64;
        }
        t
    };
    let t = warm(&mut h, 0);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut t = warm(&mut h, t);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "warmed hierarchy load/store/fetch/amo traffic allocated {} times",
        after - before
    );

    // MSHR/prefetch burst: demand misses that allocate miss-status
    // registers, train the stride prefetcher, and enqueue memory-controller
    // requests must be allocation-free too — every MLP structure is
    // fixed-capacity at construction. The prewarm streams 2 MB of stores at
    // line stride so all pages are resident and the first half has been
    // evicted from the 1 MB L2 by the second, making the measured loads
    // genuine full misses.
    let base = 0x10_0000u64; // clear of the warm arena
    for i in 0..65536u64 {
        t += h.store(0, base + i * 32, 4, i, t) as u64;
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..2048u64 {
        let (_, l) = h.load(0, base + i * 32, 4, 7, t);
        t += l as u64;
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "MSHR-allocating miss burst allocated {} times",
        after - before
    );
    assert!(
        h.mlp_stats().prefetch_issued > 0,
        "burst never engaged the prefetcher; the assertion is vacuous"
    );
}

/// The quiescence skip path — probing every component's `next_event`,
/// bulk-advancing stall statistics, and rotating the SPL round-robin
/// pointer — must add zero allocations over the ticked path. The barrier
/// workload's release machinery allocates a few short `Vec`s per rendezvous
/// on *both* paths, so the assertion is comparative: the skip-driven run of
/// the identical workload must allocate no more than the ticked run.
#[test]
fn skip_path_does_not_allocate() {
    let _guard = SERIAL.lock().unwrap();

    fn run_to_halt(skip: bool) -> (u64, u64) {
        // A barrier workload: most cycles sit at rendezvous points, so the
        // skip-driven run exercises probe, jump, and normal-step iterations.
        let mut sys = BarrierBench::Ll2.build(BarrierMode::Remap(8), 1024);
        sys.set_skip(skip);
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        while !sys.all_halted() {
            let limit = sys.cycle() + 200_000;
            sys.step_or_skip(limit);
        }
        let allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
        (allocs, sys.skipped_cycles())
    }

    let (ticked_allocs, ticked_skipped) = run_to_halt(false);
    assert_eq!(ticked_skipped, 0, "skip disabled yet cycles were skipped");
    let (skip_allocs, skipped) = run_to_halt(true);
    assert!(
        skipped > 0,
        "the skip run never skipped; the test is vacuous"
    );
    assert!(
        skip_allocs <= ticked_allocs,
        "skip engine added allocations: {skip_allocs} with skipping vs {ticked_allocs} ticked"
    );
}

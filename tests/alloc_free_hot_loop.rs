//! The simulator's per-cycle path must not touch the heap once warmed up:
//! `Core::fetch` reuses its fetch-group scratch, `SplFabric::tick_into`
//! drains into a caller-owned buffer, and `System::step` maintains its
//! running-core list and committed counter in place. This test installs a
//! counting global allocator, warms a computation workload past every
//! buffer-growth transient, and then asserts that thousands of further
//! cycles allocate nothing.
//!
//! Kept in its own integration-test binary so no concurrent test pollutes
//! the allocation counter.

use remap_workloads::comp::CompBench;
use remap_workloads::CompMode;
use std::alloc::{GlobalAlloc, Layout, System as SystemAlloc};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        SystemAlloc.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        SystemAlloc.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        SystemAlloc.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_cycles_do_not_allocate() {
    // An SPL-active computation workload: every cycle exercises fetch,
    // dispatch/issue/commit, the fabric tick, and the stats plumbing.
    let mut sys = CompBench::ALL[0].build(CompMode::Spl, 4096);

    // Warm-up: long enough for the fetch buffer, ROB, store buffer, SPL
    // queues, event scratch, and cache metadata to reach their
    // steady-state capacities.
    let mut warm = 0u32;
    while warm < 20_000 && !sys.all_halted() {
        sys.step();
        warm += 1;
    }
    assert!(
        !sys.all_halted(),
        "workload halted during warm-up; pick a larger problem size"
    );

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut measured = 0u32;
    while measured < 5_000 && !sys.all_halted() {
        sys.step();
        measured += 1;
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert!(
        measured >= 5_000,
        "workload halted during the measured window after {measured} cycles"
    );
    assert_eq!(
        after - before,
        0,
        "steady-state cycles allocated {} times over {measured} cycles",
        after - before
    );
}

//! Tier-1 gate for the quiescence skip engine: every workload configuration
//! must produce a bit-identical run whether idle stretches are bulk-skipped
//! (the default) or simulated cycle by cycle (`REMAP_NO_SKIP`).
//!
//! "Bit-identical" covers everything a run can report: total cycles, every
//! per-core statistic (including per-cycle stall counters, which the skip
//! engine replicates arithmetically), branch-predictor counters, all three
//! cache levels per core, the coherence-bus counters, and per-cluster SPL
//! fabric statistics.

use remap_suite::system::System;
use remap_suite::workloads::barriers::{BarrierBench, BarrierMode};
use remap_suite::workloads::comm::CommBench;
use remap_suite::workloads::comp::CompBench;
use remap_suite::workloads::{CommMode, CompMode};

const MAX_CYCLES: u64 = 50_000_000;

const COMP_MODES: [CompMode; 3] = [CompMode::SeqOoo1, CompMode::SeqOoo2, CompMode::Spl];
const COMM_MODES: [CommMode; 7] = [
    CommMode::SeqOoo1,
    CommMode::SeqOoo2,
    CommMode::Comp1T,
    CommMode::Comm2T,
    CommMode::CompComm2T,
    CommMode::Ooo2Comm,
    CommMode::SwQueue2T,
];

fn barrier_modes(b: BarrierBench) -> Vec<BarrierMode> {
    let mut m = vec![
        BarrierMode::Seq,
        BarrierMode::Sw(4),
        BarrierMode::Remap(4),
        BarrierMode::HwIdeal(4),
    ];
    if b.supports_comp() {
        m.push(BarrierMode::RemapComp(4));
    }
    m
}

/// Runs `skipped` (skip engine on) and `ticked` (skip engine off) to
/// completion and asserts every observable statistic matches. Returns the
/// skipped run's report.
fn assert_parity(
    label: &str,
    mut skipped: System,
    mut ticked: System,
) -> remap_suite::system::RunReport {
    skipped.set_skip(true);
    ticked.set_skip(false);
    let rs = skipped
        .run(MAX_CYCLES)
        .unwrap_or_else(|e| panic!("{label} (skip on) failed: {e:?}"));
    let rt = ticked
        .run(MAX_CYCLES)
        .unwrap_or_else(|e| panic!("{label} (skip off) failed: {e:?}"));
    assert_eq!(rt.skipped_cycles, 0, "{label}: ticked run must not skip");
    assert_eq!(rs.cycles, rt.cycles, "{label}: cycle count diverged");
    for c in 0..skipped.n_cores() {
        assert_eq!(
            rs.core_stats[c], rt.core_stats[c],
            "{label}: core {c} stats diverged"
        );
        assert_eq!(
            skipped.pred_stats(c),
            ticked.pred_stats(c),
            "{label}: core {c} predictor stats diverged"
        );
        assert_eq!(
            skipped.hierarchy().cache_stats(c),
            ticked.hierarchy().cache_stats(c),
            "{label}: core {c} cache stats diverged"
        );
    }
    assert_eq!(
        skipped.hierarchy().bus_stats(),
        ticked.hierarchy().bus_stats(),
        "{label}: coherence-bus stats diverged"
    );
    assert_eq!(skipped.n_clusters(), ticked.n_clusters(), "{label}");
    for cl in 0..skipped.n_clusters() {
        assert_eq!(
            skipped.spl_stats(cl),
            ticked.spl_stats(cl),
            "{label}: cluster {cl} SPL stats diverged"
        );
    }
    assert_eq!(
        rs.faults, rt.faults,
        "{label}: fault counters diverged (zeros when no plan is set)"
    );
    assert_eq!(
        rs.mlp, rt.mlp,
        "{label}: MSHR/prefetch/memory-controller counters diverged"
    );
    assert_eq!(rs.dir, rt.dir, "{label}: directory counters diverged");
    rs
}

#[test]
fn computation_workloads_skip_parity() {
    for b in CompBench::ALL {
        for m in COMP_MODES {
            let label = format!("{} {m:?}", b.name());
            assert_parity(&label, b.build(m, 64), b.build(m, 64));
        }
    }
}

#[test]
fn communication_workloads_skip_parity() {
    for b in CommBench::ALL {
        for m in COMM_MODES {
            let label = format!("{} {m:?}", b.name());
            assert_parity(&label, b.build(m, 64), b.build(m, 64));
        }
    }
}

#[test]
fn barrier_workloads_skip_parity_and_actually_skip() {
    let mut total_skipped = 0;
    for b in BarrierBench::ALL {
        let n = match b {
            BarrierBench::Dijkstra => 20,
            _ => 32,
        };
        for m in barrier_modes(b) {
            let label = format!("{b:?} {m:?}");
            total_skipped += assert_parity(&label, b.build(m, n), b.build(m, n)).skipped_cycles;
        }
    }
    // Barrier workloads spend most of their time spinning at rendezvous
    // points; if the engine never skips there the tentpole is vacuous.
    assert!(
        total_skipped > 0,
        "skip engine bulk-advanced zero cycles across all barrier workloads"
    );
}

/// Chaos grid: the same parity contract with a [`FaultPlan`] installed.
/// Fault decisions are event-indexed, not cycle-indexed, so the same seed
/// must produce the same injections, the same recovery costs, and the same
/// counters whether idle stretches are bulk-skipped or ticked through —
/// retry back-off windows and delayed barrier releases are exactly the
/// wake points the skip engine must not jump over.
///
/// [`FaultPlan`]: remap_suite::fault::FaultPlan
#[test]
fn faulted_workloads_skip_parity() {
    use remap_suite::fault::{FaultPlan, SiteCfg};

    let mut plan = FaultPlan::quiet(0xFA_17);
    plan.spl_bitflip = SiteCfg::rate(50_000);
    plan.hwq_drop = SiteCfg::rate(50_000);
    plan.hwq_dup = SiteCfg::rate(25_000);
    plan.hwq_delay = SiteCfg::rate(25_000);
    plan.barrier_delay = SiteCfg::rate(100_000);
    plan.cache_corrupt = SiteCfg::rate(50_000);

    let faulted = |mut sys: System| {
        sys.set_fault_plan(&plan);
        sys
    };
    let mut total_injected = 0;
    let mut grid: Vec<(String, System, System)> = Vec::new();
    for b in [CompBench::ALL[0], CompBench::ALL[3]] {
        grid.push((
            format!("{} Spl faulted", b.name()),
            faulted(b.build(CompMode::Spl, 64)),
            faulted(b.build(CompMode::Spl, 64)),
        ));
    }
    for (b, m) in [
        (CommBench::ALL[0], CommMode::CompComm2T),
        (CommBench::ALL[2], CommMode::Ooo2Comm),
    ] {
        grid.push((
            format!("{} {m:?} faulted", b.name()),
            faulted(b.build(m, 64)),
            faulted(b.build(m, 64)),
        ));
    }
    for b in [BarrierBench::Ll2, BarrierBench::Dijkstra] {
        let n = match b {
            BarrierBench::Dijkstra => 20,
            _ => 32,
        };
        grid.push((
            format!("{b:?} Remap(4) faulted"),
            faulted(b.build(BarrierMode::Remap(4), n)),
            faulted(b.build(BarrierMode::Remap(4), n)),
        ));
    }
    for (label, skipped, ticked) in grid {
        let rs = assert_parity(&label, skipped, ticked);
        total_injected += rs.faults.total_injected();
    }
    assert!(
        total_injected > 0,
        "chaos grid injected zero faults; the faulted parity check is vacuous"
    );
}

/// Multi-cluster systems stagger barrier releases across clusters (local
/// release immediately, remote after the bus latency), which exercises
/// wake-point math the four-thread grid cannot: a pending release scheduled
/// for a *future* SPL edge must not be skipped over.
#[test]
fn multi_cluster_barrier_skip_parity() {
    for b in BarrierBench::ALL {
        let n = match b {
            BarrierBench::Dijkstra => 40,
            _ => 64,
        };
        for m in [
            BarrierMode::Remap(8),
            BarrierMode::Remap(16),
            BarrierMode::HwIdeal(16),
        ] {
            let label = format!("{b:?} {m:?}");
            assert_parity(&label, b.build(m, n), b.build(m, n));
        }
    }
}

/// Grid scale-out parity: 36- and 64-core meshes route full misses through
/// the banked directory (bank-port wake points published via
/// `quiescent_wake`) and stagger barrier releases by Manhattan hops. The
/// contract is unchanged: skipping is bit-identical to ticking, and the
/// directory must actually be filtering (non-vacuous counters).
#[test]
fn grid_skip_parity_16_36_64_cores() {
    let mut total_avoided = 0;
    for b in [BarrierBench::Ll3, BarrierBench::Dijkstra] {
        let n = match b {
            BarrierBench::Dijkstra => 40,
            _ => 64,
        };
        for p in [16, 36, 64] {
            let m = BarrierMode::Remap(p);
            let label = format!("{b:?} {m:?}");
            let rs = assert_parity(&label, b.build(m, n), b.build(m, n));
            total_avoided += rs.dir.probes_avoided;
        }
    }
    assert!(
        total_avoided > 0,
        "directory avoided zero probes across all grid runs; the filter is vacuous"
    );
}

/// The directory is timing-plus-routing only, so a dir-off (broadcast
/// reference) grid run must satisfy the same skip/tick parity — including
/// under fault injection, where wake points interact with event-indexed
/// fault draws.
#[test]
fn grid_skip_parity_broadcast_reference() {
    use remap_suite::fault::{FaultPlan, SiteCfg};

    let no_dir = |mut sys: System| {
        sys.set_dir(false);
        sys
    };
    let b = BarrierBench::Ll3;
    for p in [16, 36] {
        let m = BarrierMode::Remap(p);
        let label = format!("{b:?} {m:?} no-dir");
        let rs = assert_parity(&label, no_dir(b.build(m, 64)), no_dir(b.build(m, 64)));
        assert_eq!(rs.dir, Default::default(), "{label}: dir counters not zero");
    }
    let mut plan = FaultPlan::quiet(0xFA_17);
    plan.cache_corrupt = SiteCfg::rate(25_000);
    plan.barrier_delay = SiteCfg::rate(100_000);
    let faulted = |mut sys: System| {
        sys.set_fault_plan(&plan);
        sys
    };
    let m = BarrierMode::Remap(36);
    let label = "Ll3 Remap(36) faulted";
    let rs = assert_parity(label, faulted(b.build(m, 64)), faulted(b.build(m, 64)));
    assert!(
        rs.faults.total_injected() > 0,
        "faulted 36-core grid run injected nothing; the check is vacuous"
    );
}

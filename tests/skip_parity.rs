//! Tier-1 gate for the quiescence skip engine: every workload configuration
//! must produce a bit-identical run whether idle stretches are bulk-skipped
//! (the default) or simulated cycle by cycle (`REMAP_NO_SKIP`).
//!
//! "Bit-identical" covers everything a run can report: total cycles, every
//! per-core statistic (including per-cycle stall counters, which the skip
//! engine replicates arithmetically), branch-predictor counters, all three
//! cache levels per core, the coherence-bus counters, and per-cluster SPL
//! fabric statistics.

use remap_suite::system::System;
use remap_suite::workloads::barriers::{BarrierBench, BarrierMode};
use remap_suite::workloads::comm::CommBench;
use remap_suite::workloads::comp::CompBench;
use remap_suite::workloads::{CommMode, CompMode};

const MAX_CYCLES: u64 = 50_000_000;

const COMP_MODES: [CompMode; 3] = [CompMode::SeqOoo1, CompMode::SeqOoo2, CompMode::Spl];
const COMM_MODES: [CommMode; 7] = [
    CommMode::SeqOoo1,
    CommMode::SeqOoo2,
    CommMode::Comp1T,
    CommMode::Comm2T,
    CommMode::CompComm2T,
    CommMode::Ooo2Comm,
    CommMode::SwQueue2T,
];

fn barrier_modes(b: BarrierBench) -> Vec<BarrierMode> {
    let mut m = vec![
        BarrierMode::Seq,
        BarrierMode::Sw(4),
        BarrierMode::Remap(4),
        BarrierMode::HwIdeal(4),
    ];
    if b.supports_comp() {
        m.push(BarrierMode::RemapComp(4));
    }
    m
}

/// Runs `skipped` (skip engine on) and `ticked` (skip engine off) to
/// completion and asserts every observable statistic matches. Returns the
/// skipped run's bulk-advanced cycle count.
fn assert_parity(label: &str, mut skipped: System, mut ticked: System) -> u64 {
    skipped.set_skip(true);
    ticked.set_skip(false);
    let rs = skipped
        .run(MAX_CYCLES)
        .unwrap_or_else(|e| panic!("{label} (skip on) failed: {e:?}"));
    let rt = ticked
        .run(MAX_CYCLES)
        .unwrap_or_else(|e| panic!("{label} (skip off) failed: {e:?}"));
    assert_eq!(rt.skipped_cycles, 0, "{label}: ticked run must not skip");
    assert_eq!(rs.cycles, rt.cycles, "{label}: cycle count diverged");
    for c in 0..skipped.n_cores() {
        assert_eq!(
            rs.core_stats[c], rt.core_stats[c],
            "{label}: core {c} stats diverged"
        );
        assert_eq!(
            skipped.pred_stats(c),
            ticked.pred_stats(c),
            "{label}: core {c} predictor stats diverged"
        );
        assert_eq!(
            skipped.hierarchy().cache_stats(c),
            ticked.hierarchy().cache_stats(c),
            "{label}: core {c} cache stats diverged"
        );
    }
    assert_eq!(
        skipped.hierarchy().bus_stats(),
        ticked.hierarchy().bus_stats(),
        "{label}: coherence-bus stats diverged"
    );
    assert_eq!(skipped.n_clusters(), ticked.n_clusters(), "{label}");
    for cl in 0..skipped.n_clusters() {
        assert_eq!(
            skipped.spl_stats(cl),
            ticked.spl_stats(cl),
            "{label}: cluster {cl} SPL stats diverged"
        );
    }
    rs.skipped_cycles
}

#[test]
fn computation_workloads_skip_parity() {
    for b in CompBench::ALL {
        for m in COMP_MODES {
            let label = format!("{} {m:?}", b.name());
            assert_parity(&label, b.build(m, 64), b.build(m, 64));
        }
    }
}

#[test]
fn communication_workloads_skip_parity() {
    for b in CommBench::ALL {
        for m in COMM_MODES {
            let label = format!("{} {m:?}", b.name());
            assert_parity(&label, b.build(m, 64), b.build(m, 64));
        }
    }
}

#[test]
fn barrier_workloads_skip_parity_and_actually_skip() {
    let mut total_skipped = 0;
    for b in BarrierBench::ALL {
        let n = match b {
            BarrierBench::Dijkstra => 20,
            _ => 32,
        };
        for m in barrier_modes(b) {
            let label = format!("{b:?} {m:?}");
            total_skipped += assert_parity(&label, b.build(m, n), b.build(m, n));
        }
    }
    // Barrier workloads spend most of their time spinning at rendezvous
    // points; if the engine never skips there the tentpole is vacuous.
    assert!(
        total_skipped > 0,
        "skip engine bulk-advanced zero cycles across all barrier workloads"
    );
}

/// Multi-cluster systems stagger barrier releases across clusters (local
/// release immediately, remote after the bus latency), which exercises
/// wake-point math the four-thread grid cannot: a pending release scheduled
/// for a *future* SPL edge must not be skipped over.
#[test]
fn multi_cluster_barrier_skip_parity() {
    for b in BarrierBench::ALL {
        let n = match b {
            BarrierBench::Dijkstra => 40,
            _ => 64,
        };
        for m in [
            BarrierMode::Remap(8),
            BarrierMode::Remap(16),
            BarrierMode::HwIdeal(16),
        ] {
            let label = format!("{b:?} {m:?}");
            assert_parity(&label, b.build(m, n), b.build(m, n));
        }
    }
}

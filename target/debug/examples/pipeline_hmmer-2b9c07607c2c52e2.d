/root/repo/target/debug/examples/pipeline_hmmer-2b9c07607c2c52e2.d: examples/pipeline_hmmer.rs

/root/repo/target/debug/examples/pipeline_hmmer-2b9c07607c2c52e2: examples/pipeline_hmmer.rs

examples/pipeline_hmmer.rs:

/root/repo/target/debug/examples/quickstart-8894486f7ddfaf73.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-8894486f7ddfaf73: examples/quickstart.rs

examples/quickstart.rs:

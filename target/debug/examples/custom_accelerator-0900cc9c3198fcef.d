/root/repo/target/debug/examples/custom_accelerator-0900cc9c3198fcef.d: examples/custom_accelerator.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_accelerator-0900cc9c3198fcef.rmeta: examples/custom_accelerator.rs Cargo.toml

examples/custom_accelerator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

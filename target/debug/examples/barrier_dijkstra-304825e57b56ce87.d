/root/repo/target/debug/examples/barrier_dijkstra-304825e57b56ce87.d: examples/barrier_dijkstra.rs

/root/repo/target/debug/examples/barrier_dijkstra-304825e57b56ce87: examples/barrier_dijkstra.rs

examples/barrier_dijkstra.rs:

/root/repo/target/debug/examples/tmp_verify_demo-344cb50f3b835fad.d: examples/tmp_verify_demo.rs

/root/repo/target/debug/examples/tmp_verify_demo-344cb50f3b835fad: examples/tmp_verify_demo.rs

examples/tmp_verify_demo.rs:

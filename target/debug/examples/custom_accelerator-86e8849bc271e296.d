/root/repo/target/debug/examples/custom_accelerator-86e8849bc271e296.d: examples/custom_accelerator.rs

/root/repo/target/debug/examples/custom_accelerator-86e8849bc271e296: examples/custom_accelerator.rs

examples/custom_accelerator.rs:

/root/repo/target/debug/examples/pipeline_hmmer-aadeb9d7b9b2000b.d: examples/pipeline_hmmer.rs Cargo.toml

/root/repo/target/debug/examples/libpipeline_hmmer-aadeb9d7b9b2000b.rmeta: examples/pipeline_hmmer.rs Cargo.toml

examples/pipeline_hmmer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/quickstart-0be523a6060e881d.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-0be523a6060e881d: examples/quickstart.rs

examples/quickstart.rs:

/root/repo/target/debug/examples/barrier_dijkstra-8321beaccb127f58.d: examples/barrier_dijkstra.rs Cargo.toml

/root/repo/target/debug/examples/libbarrier_dijkstra-8321beaccb127f58.rmeta: examples/barrier_dijkstra.rs Cargo.toml

examples/barrier_dijkstra.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/barrier_dijkstra-5faf922c40721814.d: examples/barrier_dijkstra.rs

/root/repo/target/debug/examples/barrier_dijkstra-5faf922c40721814: examples/barrier_dijkstra.rs

examples/barrier_dijkstra.rs:

/root/repo/target/debug/examples/custom_accelerator-473c536cd2fe53a9.d: examples/custom_accelerator.rs

/root/repo/target/debug/examples/custom_accelerator-473c536cd2fe53a9: examples/custom_accelerator.rs

examples/custom_accelerator.rs:

/root/repo/target/debug/examples/pipeline_hmmer-8f672684663e9720.d: examples/pipeline_hmmer.rs

/root/repo/target/debug/examples/pipeline_hmmer-8f672684663e9720: examples/pipeline_hmmer.rs

examples/pipeline_hmmer.rs:

/root/repo/target/debug/deps/remap_suite-e3772b310c9c42e6.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libremap_suite-e3772b310c9c42e6.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

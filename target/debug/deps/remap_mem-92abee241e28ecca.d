/root/repo/target/debug/deps/remap_mem-92abee241e28ecca.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/flat.rs crates/mem/src/hierarchy.rs Cargo.toml

/root/repo/target/debug/deps/libremap_mem-92abee241e28ecca.rmeta: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/flat.rs crates/mem/src/hierarchy.rs Cargo.toml

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/flat.rs:
crates/mem/src/hierarchy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/remap_verify-74b589b8d340112d.d: crates/verify/src/lib.rs crates/verify/src/bundle.rs crates/verify/src/cfg.rs crates/verify/src/diag.rs crates/verify/src/program.rs Cargo.toml

/root/repo/target/debug/deps/libremap_verify-74b589b8d340112d.rmeta: crates/verify/src/lib.rs crates/verify/src/bundle.rs crates/verify/src/cfg.rs crates/verify/src/diag.rs crates/verify/src/program.rs Cargo.toml

crates/verify/src/lib.rs:
crates/verify/src/bundle.rs:
crates/verify/src/cfg.rs:
crates/verify/src/diag.rs:
crates/verify/src/program.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/remap-b98ec3b468960426.d: crates/core/src/lib.rs crates/core/src/hetero.rs crates/core/src/report.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libremap-b98ec3b468960426.rlib: crates/core/src/lib.rs crates/core/src/hetero.rs crates/core/src/report.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libremap-b98ec3b468960426.rmeta: crates/core/src/lib.rs crates/core/src/hetero.rs crates/core/src/report.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/hetero.rs:
crates/core/src/report.rs:
crates/core/src/system.rs:

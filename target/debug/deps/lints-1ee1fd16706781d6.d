/root/repo/target/debug/deps/lints-1ee1fd16706781d6.d: crates/verify/tests/lints.rs

/root/repo/target/debug/deps/lints-1ee1fd16706781d6: crates/verify/tests/lints.rs

crates/verify/tests/lints.rs:

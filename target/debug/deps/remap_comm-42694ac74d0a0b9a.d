/root/repo/target/debug/deps/remap_comm-42694ac74d0a0b9a.d: crates/comm/src/lib.rs crates/comm/src/barrier.rs crates/comm/src/bus.rs crates/comm/src/hwbarrier.rs crates/comm/src/hwqueue.rs crates/comm/src/t2c.rs

/root/repo/target/debug/deps/libremap_comm-42694ac74d0a0b9a.rlib: crates/comm/src/lib.rs crates/comm/src/barrier.rs crates/comm/src/bus.rs crates/comm/src/hwbarrier.rs crates/comm/src/hwqueue.rs crates/comm/src/t2c.rs

/root/repo/target/debug/deps/libremap_comm-42694ac74d0a0b9a.rmeta: crates/comm/src/lib.rs crates/comm/src/barrier.rs crates/comm/src/bus.rs crates/comm/src/hwbarrier.rs crates/comm/src/hwqueue.rs crates/comm/src/t2c.rs

crates/comm/src/lib.rs:
crates/comm/src/barrier.rs:
crates/comm/src/bus.rs:
crates/comm/src/hwbarrier.rs:
crates/comm/src/hwqueue.rs:
crates/comm/src/t2c.rs:

/root/repo/target/debug/deps/remap-110ba449fde15321.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libremap-110ba449fde15321.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/verify_workloads-bf2482ee2d555a14.d: tests/verify_workloads.rs Cargo.toml

/root/repo/target/debug/deps/libverify_workloads-bf2482ee2d555a14.rmeta: tests/verify_workloads.rs Cargo.toml

tests/verify_workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/prop_exec-8f75f64fd7aba382.d: crates/cpu/tests/prop_exec.rs

/root/repo/target/debug/deps/prop_exec-8f75f64fd7aba382: crates/cpu/tests/prop_exec.rs

crates/cpu/tests/prop_exec.rs:

/root/repo/target/debug/deps/prop-f09813073b24998f.d: crates/verify/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-f09813073b24998f.rmeta: crates/verify/tests/prop.rs Cargo.toml

crates/verify/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/end_to_end-4c15c5563123f9bd.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-4c15c5563123f9bd: tests/end_to_end.rs

tests/end_to_end.rs:

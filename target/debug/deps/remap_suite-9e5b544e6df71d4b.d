/root/repo/target/debug/deps/remap_suite-9e5b544e6df71d4b.d: src/lib.rs

/root/repo/target/debug/deps/libremap_suite-9e5b544e6df71d4b.rlib: src/lib.rs

/root/repo/target/debug/deps/libremap_suite-9e5b544e6df71d4b.rmeta: src/lib.rs

src/lib.rs:

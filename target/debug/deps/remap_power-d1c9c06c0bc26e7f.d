/root/repo/target/debug/deps/remap_power-d1c9c06c0bc26e7f.d: crates/power/src/lib.rs crates/power/src/area.rs crates/power/src/energy.rs crates/power/src/model.rs

/root/repo/target/debug/deps/libremap_power-d1c9c06c0bc26e7f.rlib: crates/power/src/lib.rs crates/power/src/area.rs crates/power/src/energy.rs crates/power/src/model.rs

/root/repo/target/debug/deps/libremap_power-d1c9c06c0bc26e7f.rmeta: crates/power/src/lib.rs crates/power/src/area.rs crates/power/src/energy.rs crates/power/src/model.rs

crates/power/src/lib.rs:
crates/power/src/area.rs:
crates/power/src/energy.rs:
crates/power/src/model.rs:

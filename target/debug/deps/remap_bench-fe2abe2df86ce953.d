/root/repo/target/debug/deps/remap_bench-fe2abe2df86ce953.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libremap_bench-fe2abe2df86ce953.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/remap_isa-cd740e7f4f7f4776.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/inst.rs crates/isa/src/program.rs crates/isa/src/reg.rs

/root/repo/target/debug/deps/libremap_isa-cd740e7f4f7f4776.rlib: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/inst.rs crates/isa/src/program.rs crates/isa/src/reg.rs

/root/repo/target/debug/deps/libremap_isa-cd740e7f4f7f4776.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/inst.rs crates/isa/src/program.rs crates/isa/src/reg.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/inst.rs:
crates/isa/src/program.rs:
crates/isa/src/reg.rs:

/root/repo/target/debug/deps/remap_power-7c40c1e58cef93f4.d: crates/power/src/lib.rs crates/power/src/area.rs crates/power/src/energy.rs crates/power/src/model.rs Cargo.toml

/root/repo/target/debug/deps/libremap_power-7c40c1e58cef93f4.rmeta: crates/power/src/lib.rs crates/power/src/area.rs crates/power/src/energy.rs crates/power/src/model.rs Cargo.toml

crates/power/src/lib.rs:
crates/power/src/area.rs:
crates/power/src/energy.rs:
crates/power/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

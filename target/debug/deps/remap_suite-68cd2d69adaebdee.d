/root/repo/target/debug/deps/remap_suite-68cd2d69adaebdee.d: src/lib.rs

/root/repo/target/debug/deps/remap_suite-68cd2d69adaebdee: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/remap-074663bce064bf38.d: crates/core/src/lib.rs crates/core/src/hetero.rs crates/core/src/report.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libremap-074663bce064bf38.rlib: crates/core/src/lib.rs crates/core/src/hetero.rs crates/core/src/report.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libremap-074663bce064bf38.rmeta: crates/core/src/lib.rs crates/core/src/hetero.rs crates/core/src/report.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/hetero.rs:
crates/core/src/report.rs:
crates/core/src/system.rs:

/root/repo/target/debug/deps/verify_workloads-d2fd1290b97fd726.d: tests/verify_workloads.rs

/root/repo/target/debug/deps/verify_workloads-d2fd1290b97fd726: tests/verify_workloads.rs

tests/verify_workloads.rs:

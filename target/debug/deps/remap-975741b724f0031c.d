/root/repo/target/debug/deps/remap-975741b724f0031c.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libremap-975741b724f0031c.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/fig12-66709be4b2cce7f4.d: crates/bench/benches/fig12.rs Cargo.toml

/root/repo/target/debug/deps/libfig12-66709be4b2cce7f4.rmeta: crates/bench/benches/fig12.rs Cargo.toml

crates/bench/benches/fig12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

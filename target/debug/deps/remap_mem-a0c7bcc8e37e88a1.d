/root/repo/target/debug/deps/remap_mem-a0c7bcc8e37e88a1.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/flat.rs crates/mem/src/hierarchy.rs

/root/repo/target/debug/deps/libremap_mem-a0c7bcc8e37e88a1.rlib: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/flat.rs crates/mem/src/hierarchy.rs

/root/repo/target/debug/deps/libremap_mem-a0c7bcc8e37e88a1.rmeta: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/flat.rs crates/mem/src/hierarchy.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/flat.rs:
crates/mem/src/hierarchy.rs:

/root/repo/target/debug/deps/remap_bench-be62a516bb267ea4.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/remap_bench-be62a516bb267ea4: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

/root/repo/target/debug/deps/remap_isa-4026e870c241191a.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/inst.rs crates/isa/src/program.rs crates/isa/src/reg.rs

/root/repo/target/debug/deps/remap_isa-4026e870c241191a: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/inst.rs crates/isa/src/program.rs crates/isa/src/reg.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/inst.rs:
crates/isa/src/program.rs:
crates/isa/src/reg.rs:

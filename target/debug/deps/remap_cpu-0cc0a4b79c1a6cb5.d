/root/repo/target/debug/deps/remap_cpu-0cc0a4b79c1a6cb5.d: crates/cpu/src/lib.rs crates/cpu/src/bpred.rs crates/cpu/src/config.rs crates/cpu/src/core.rs crates/cpu/src/ports.rs crates/cpu/src/stats.rs

/root/repo/target/debug/deps/libremap_cpu-0cc0a4b79c1a6cb5.rlib: crates/cpu/src/lib.rs crates/cpu/src/bpred.rs crates/cpu/src/config.rs crates/cpu/src/core.rs crates/cpu/src/ports.rs crates/cpu/src/stats.rs

/root/repo/target/debug/deps/libremap_cpu-0cc0a4b79c1a6cb5.rmeta: crates/cpu/src/lib.rs crates/cpu/src/bpred.rs crates/cpu/src/config.rs crates/cpu/src/core.rs crates/cpu/src/ports.rs crates/cpu/src/stats.rs

crates/cpu/src/lib.rs:
crates/cpu/src/bpred.rs:
crates/cpu/src/config.rs:
crates/cpu/src/core.rs:
crates/cpu/src/ports.rs:
crates/cpu/src/stats.rs:

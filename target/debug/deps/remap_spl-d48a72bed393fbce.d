/root/repo/target/debug/deps/remap_spl-d48a72bed393fbce.d: crates/spl/src/lib.rs crates/spl/src/fabric.rs crates/spl/src/function.rs crates/spl/src/queue.rs crates/spl/src/row.rs

/root/repo/target/debug/deps/libremap_spl-d48a72bed393fbce.rlib: crates/spl/src/lib.rs crates/spl/src/fabric.rs crates/spl/src/function.rs crates/spl/src/queue.rs crates/spl/src/row.rs

/root/repo/target/debug/deps/libremap_spl-d48a72bed393fbce.rmeta: crates/spl/src/lib.rs crates/spl/src/fabric.rs crates/spl/src/function.rs crates/spl/src/queue.rs crates/spl/src/row.rs

crates/spl/src/lib.rs:
crates/spl/src/fabric.rs:
crates/spl/src/function.rs:
crates/spl/src/queue.rs:
crates/spl/src/row.rs:

/root/repo/target/debug/deps/fig14-a98e4ef67ade9fce.d: crates/bench/benches/fig14.rs Cargo.toml

/root/repo/target/debug/deps/libfig14-a98e4ef67ade9fce.rmeta: crates/bench/benches/fig14.rs Cargo.toml

crates/bench/benches/fig14.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/remap_suite-55ab2161e7796d72.d: src/lib.rs

/root/repo/target/debug/deps/libremap_suite-55ab2161e7796d72.rlib: src/lib.rs

/root/repo/target/debug/deps/libremap_suite-55ab2161e7796d72.rmeta: src/lib.rs

src/lib.rs:

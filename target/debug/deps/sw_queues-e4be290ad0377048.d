/root/repo/target/debug/deps/sw_queues-e4be290ad0377048.d: crates/bench/benches/sw_queues.rs Cargo.toml

/root/repo/target/debug/deps/libsw_queues-e4be290ad0377048.rmeta: crates/bench/benches/sw_queues.rs Cargo.toml

crates/bench/benches/sw_queues.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/remap_mem-631c83be3de31b15.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/flat.rs crates/mem/src/hierarchy.rs

/root/repo/target/debug/deps/libremap_mem-631c83be3de31b15.rlib: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/flat.rs crates/mem/src/hierarchy.rs

/root/repo/target/debug/deps/libremap_mem-631c83be3de31b15.rmeta: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/flat.rs crates/mem/src/hierarchy.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/flat.rs:
crates/mem/src/hierarchy.rs:

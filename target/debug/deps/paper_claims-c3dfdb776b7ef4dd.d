/root/repo/target/debug/deps/paper_claims-c3dfdb776b7ef4dd.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-c3dfdb776b7ef4dd: tests/paper_claims.rs

tests/paper_claims.rs:

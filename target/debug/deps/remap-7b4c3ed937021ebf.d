/root/repo/target/debug/deps/remap-7b4c3ed937021ebf.d: crates/core/src/lib.rs crates/core/src/hetero.rs crates/core/src/report.rs crates/core/src/system.rs Cargo.toml

/root/repo/target/debug/deps/libremap-7b4c3ed937021ebf.rmeta: crates/core/src/lib.rs crates/core/src/hetero.rs crates/core/src/report.rs crates/core/src/system.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/hetero.rs:
crates/core/src/report.rs:
crates/core/src/system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

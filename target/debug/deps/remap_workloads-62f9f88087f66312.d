/root/repo/target/debug/deps/remap_workloads-62f9f88087f66312.d: crates/workloads/src/lib.rs crates/workloads/src/barriers.rs crates/workloads/src/comm.rs crates/workloads/src/comm_progs.rs crates/workloads/src/comp.rs crates/workloads/src/framework.rs crates/workloads/src/pipeline.rs

/root/repo/target/debug/deps/libremap_workloads-62f9f88087f66312.rlib: crates/workloads/src/lib.rs crates/workloads/src/barriers.rs crates/workloads/src/comm.rs crates/workloads/src/comm_progs.rs crates/workloads/src/comp.rs crates/workloads/src/framework.rs crates/workloads/src/pipeline.rs

/root/repo/target/debug/deps/libremap_workloads-62f9f88087f66312.rmeta: crates/workloads/src/lib.rs crates/workloads/src/barriers.rs crates/workloads/src/comm.rs crates/workloads/src/comm_progs.rs crates/workloads/src/comp.rs crates/workloads/src/framework.rs crates/workloads/src/pipeline.rs

crates/workloads/src/lib.rs:
crates/workloads/src/barriers.rs:
crates/workloads/src/comm.rs:
crates/workloads/src/comm_progs.rs:
crates/workloads/src/comp.rs:
crates/workloads/src/framework.rs:
crates/workloads/src/pipeline.rs:

/root/repo/target/debug/deps/prop_exec-9bb45ebbf8a4fefb.d: crates/cpu/tests/prop_exec.rs Cargo.toml

/root/repo/target/debug/deps/libprop_exec-9bb45ebbf8a4fefb.rmeta: crates/cpu/tests/prop_exec.rs Cargo.toml

crates/cpu/tests/prop_exec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

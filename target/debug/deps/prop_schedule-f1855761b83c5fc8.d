/root/repo/target/debug/deps/prop_schedule-f1855761b83c5fc8.d: crates/spl/tests/prop_schedule.rs Cargo.toml

/root/repo/target/debug/deps/libprop_schedule-f1855761b83c5fc8.rmeta: crates/spl/tests/prop_schedule.rs Cargo.toml

crates/spl/tests/prop_schedule.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/remap_bench-c5bfa6ae149390a5.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libremap_bench-c5bfa6ae149390a5.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/remap_spl-5d1dba9b7097c569.d: crates/spl/src/lib.rs crates/spl/src/fabric.rs crates/spl/src/function.rs crates/spl/src/queue.rs crates/spl/src/row.rs Cargo.toml

/root/repo/target/debug/deps/libremap_spl-5d1dba9b7097c569.rmeta: crates/spl/src/lib.rs crates/spl/src/fabric.rs crates/spl/src/function.rs crates/spl/src/queue.rs crates/spl/src/row.rs Cargo.toml

crates/spl/src/lib.rs:
crates/spl/src/fabric.rs:
crates/spl/src/function.rs:
crates/spl/src/queue.rs:
crates/spl/src/row.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

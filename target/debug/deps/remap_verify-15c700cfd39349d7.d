/root/repo/target/debug/deps/remap_verify-15c700cfd39349d7.d: crates/verify/src/lib.rs crates/verify/src/bundle.rs crates/verify/src/cfg.rs crates/verify/src/diag.rs crates/verify/src/program.rs

/root/repo/target/debug/deps/remap_verify-15c700cfd39349d7: crates/verify/src/lib.rs crates/verify/src/bundle.rs crates/verify/src/cfg.rs crates/verify/src/diag.rs crates/verify/src/program.rs

crates/verify/src/lib.rs:
crates/verify/src/bundle.rs:
crates/verify/src/cfg.rs:
crates/verify/src/diag.rs:
crates/verify/src/program.rs:

/root/repo/target/debug/deps/remap_suite-799552c2d1a5c53c.d: src/lib.rs

/root/repo/target/debug/deps/remap_suite-799552c2d1a5c53c: src/lib.rs

src/lib.rs:

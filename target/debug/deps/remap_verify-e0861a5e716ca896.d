/root/repo/target/debug/deps/remap_verify-e0861a5e716ca896.d: crates/verify/src/lib.rs crates/verify/src/bundle.rs crates/verify/src/cfg.rs crates/verify/src/diag.rs crates/verify/src/program.rs Cargo.toml

/root/repo/target/debug/deps/libremap_verify-e0861a5e716ca896.rmeta: crates/verify/src/lib.rs crates/verify/src/bundle.rs crates/verify/src/cfg.rs crates/verify/src/diag.rs crates/verify/src/program.rs Cargo.toml

crates/verify/src/lib.rs:
crates/verify/src/bundle.rs:
crates/verify/src/cfg.rs:
crates/verify/src/diag.rs:
crates/verify/src/program.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

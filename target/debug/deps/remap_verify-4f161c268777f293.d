/root/repo/target/debug/deps/remap_verify-4f161c268777f293.d: crates/verify/src/lib.rs crates/verify/src/bundle.rs crates/verify/src/cfg.rs crates/verify/src/diag.rs crates/verify/src/program.rs

/root/repo/target/debug/deps/libremap_verify-4f161c268777f293.rlib: crates/verify/src/lib.rs crates/verify/src/bundle.rs crates/verify/src/cfg.rs crates/verify/src/diag.rs crates/verify/src/program.rs

/root/repo/target/debug/deps/libremap_verify-4f161c268777f293.rmeta: crates/verify/src/lib.rs crates/verify/src/bundle.rs crates/verify/src/cfg.rs crates/verify/src/diag.rs crates/verify/src/program.rs

crates/verify/src/lib.rs:
crates/verify/src/bundle.rs:
crates/verify/src/cfg.rs:
crates/verify/src/diag.rs:
crates/verify/src/program.rs:

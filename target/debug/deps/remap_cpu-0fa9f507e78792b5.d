/root/repo/target/debug/deps/remap_cpu-0fa9f507e78792b5.d: crates/cpu/src/lib.rs crates/cpu/src/bpred.rs crates/cpu/src/config.rs crates/cpu/src/core.rs crates/cpu/src/ports.rs crates/cpu/src/stats.rs

/root/repo/target/debug/deps/remap_cpu-0fa9f507e78792b5: crates/cpu/src/lib.rs crates/cpu/src/bpred.rs crates/cpu/src/config.rs crates/cpu/src/core.rs crates/cpu/src/ports.rs crates/cpu/src/stats.rs

crates/cpu/src/lib.rs:
crates/cpu/src/bpred.rs:
crates/cpu/src/config.rs:
crates/cpu/src/core.rs:
crates/cpu/src/ports.rs:
crates/cpu/src/stats.rs:

/root/repo/target/debug/deps/remap_comm-281ebc492367e2f4.d: crates/comm/src/lib.rs crates/comm/src/barrier.rs crates/comm/src/bus.rs crates/comm/src/hwbarrier.rs crates/comm/src/hwqueue.rs crates/comm/src/t2c.rs

/root/repo/target/debug/deps/libremap_comm-281ebc492367e2f4.rlib: crates/comm/src/lib.rs crates/comm/src/barrier.rs crates/comm/src/bus.rs crates/comm/src/hwbarrier.rs crates/comm/src/hwqueue.rs crates/comm/src/t2c.rs

/root/repo/target/debug/deps/libremap_comm-281ebc492367e2f4.rmeta: crates/comm/src/lib.rs crates/comm/src/barrier.rs crates/comm/src/bus.rs crates/comm/src/hwbarrier.rs crates/comm/src/hwqueue.rs crates/comm/src/t2c.rs

crates/comm/src/lib.rs:
crates/comm/src/barrier.rs:
crates/comm/src/bus.rs:
crates/comm/src/hwbarrier.rs:
crates/comm/src/hwqueue.rs:
crates/comm/src/t2c.rs:

/root/repo/target/debug/deps/lints-5dc9eafa50e21b85.d: crates/verify/tests/lints.rs Cargo.toml

/root/repo/target/debug/deps/liblints-5dc9eafa50e21b85.rmeta: crates/verify/tests/lints.rs Cargo.toml

crates/verify/tests/lints.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

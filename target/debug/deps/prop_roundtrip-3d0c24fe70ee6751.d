/root/repo/target/debug/deps/prop_roundtrip-3d0c24fe70ee6751.d: crates/isa/tests/prop_roundtrip.rs

/root/repo/target/debug/deps/prop_roundtrip-3d0c24fe70ee6751: crates/isa/tests/prop_roundtrip.rs

crates/isa/tests/prop_roundtrip.rs:

/root/repo/target/debug/deps/remap_suite-8284315bd2e1adc0.d: src/lib.rs

/root/repo/target/debug/deps/libremap_suite-8284315bd2e1adc0.rlib: src/lib.rs

/root/repo/target/debug/deps/libremap_suite-8284315bd2e1adc0.rmeta: src/lib.rs

src/lib.rs:

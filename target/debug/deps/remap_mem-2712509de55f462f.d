/root/repo/target/debug/deps/remap_mem-2712509de55f462f.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/flat.rs crates/mem/src/hierarchy.rs

/root/repo/target/debug/deps/remap_mem-2712509de55f462f: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/flat.rs crates/mem/src/hierarchy.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/flat.rs:
crates/mem/src/hierarchy.rs:

/root/repo/target/debug/deps/prop_mesi-c0d0cb34e6f8028e.d: crates/mem/tests/prop_mesi.rs

/root/repo/target/debug/deps/prop_mesi-c0d0cb34e6f8028e: crates/mem/tests/prop_mesi.rs

crates/mem/tests/prop_mesi.rs:

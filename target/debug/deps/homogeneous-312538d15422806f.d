/root/repo/target/debug/deps/homogeneous-312538d15422806f.d: crates/bench/benches/homogeneous.rs Cargo.toml

/root/repo/target/debug/deps/libhomogeneous-312538d15422806f.rmeta: crates/bench/benches/homogeneous.rs Cargo.toml

crates/bench/benches/homogeneous.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/remap-62bfdcc3aeda5018.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/remap-62bfdcc3aeda5018: crates/cli/src/main.rs

crates/cli/src/main.rs:

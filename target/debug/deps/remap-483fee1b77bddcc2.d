/root/repo/target/debug/deps/remap-483fee1b77bddcc2.d: crates/core/src/lib.rs crates/core/src/hetero.rs crates/core/src/report.rs crates/core/src/system.rs

/root/repo/target/debug/deps/remap-483fee1b77bddcc2: crates/core/src/lib.rs crates/core/src/hetero.rs crates/core/src/report.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/hetero.rs:
crates/core/src/report.rs:
crates/core/src/system.rs:

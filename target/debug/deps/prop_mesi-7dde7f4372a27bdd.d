/root/repo/target/debug/deps/prop_mesi-7dde7f4372a27bdd.d: crates/mem/tests/prop_mesi.rs Cargo.toml

/root/repo/target/debug/deps/libprop_mesi-7dde7f4372a27bdd.rmeta: crates/mem/tests/prop_mesi.rs Cargo.toml

crates/mem/tests/prop_mesi.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

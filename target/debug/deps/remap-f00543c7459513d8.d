/root/repo/target/debug/deps/remap-f00543c7459513d8.d: crates/core/src/lib.rs crates/core/src/hetero.rs crates/core/src/report.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libremap-f00543c7459513d8.rlib: crates/core/src/lib.rs crates/core/src/hetero.rs crates/core/src/report.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libremap-f00543c7459513d8.rmeta: crates/core/src/lib.rs crates/core/src/hetero.rs crates/core/src/report.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/hetero.rs:
crates/core/src/report.rs:
crates/core/src/system.rs:

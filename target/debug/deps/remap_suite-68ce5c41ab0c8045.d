/root/repo/target/debug/deps/remap_suite-68ce5c41ab0c8045.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libremap_suite-68ce5c41ab0c8045.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/prop_schedule-7ed500b647495cd2.d: crates/spl/tests/prop_schedule.rs

/root/repo/target/debug/deps/prop_schedule-7ed500b647495cd2: crates/spl/tests/prop_schedule.rs

crates/spl/tests/prop_schedule.rs:

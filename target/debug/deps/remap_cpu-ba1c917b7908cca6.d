/root/repo/target/debug/deps/remap_cpu-ba1c917b7908cca6.d: crates/cpu/src/lib.rs crates/cpu/src/bpred.rs crates/cpu/src/config.rs crates/cpu/src/core.rs crates/cpu/src/ports.rs crates/cpu/src/stats.rs

/root/repo/target/debug/deps/libremap_cpu-ba1c917b7908cca6.rlib: crates/cpu/src/lib.rs crates/cpu/src/bpred.rs crates/cpu/src/config.rs crates/cpu/src/core.rs crates/cpu/src/ports.rs crates/cpu/src/stats.rs

/root/repo/target/debug/deps/libremap_cpu-ba1c917b7908cca6.rmeta: crates/cpu/src/lib.rs crates/cpu/src/bpred.rs crates/cpu/src/config.rs crates/cpu/src/core.rs crates/cpu/src/ports.rs crates/cpu/src/stats.rs

crates/cpu/src/lib.rs:
crates/cpu/src/bpred.rs:
crates/cpu/src/config.rs:
crates/cpu/src/core.rs:
crates/cpu/src/ports.rs:
crates/cpu/src/stats.rs:

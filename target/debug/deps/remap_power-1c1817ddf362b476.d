/root/repo/target/debug/deps/remap_power-1c1817ddf362b476.d: crates/power/src/lib.rs crates/power/src/area.rs crates/power/src/energy.rs crates/power/src/model.rs

/root/repo/target/debug/deps/libremap_power-1c1817ddf362b476.rlib: crates/power/src/lib.rs crates/power/src/area.rs crates/power/src/energy.rs crates/power/src/model.rs

/root/repo/target/debug/deps/libremap_power-1c1817ddf362b476.rmeta: crates/power/src/lib.rs crates/power/src/area.rs crates/power/src/energy.rs crates/power/src/model.rs

crates/power/src/lib.rs:
crates/power/src/area.rs:
crates/power/src/energy.rs:
crates/power/src/model.rs:

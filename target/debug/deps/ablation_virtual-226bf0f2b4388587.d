/root/repo/target/debug/deps/ablation_virtual-226bf0f2b4388587.d: crates/bench/benches/ablation_virtual.rs Cargo.toml

/root/repo/target/debug/deps/libablation_virtual-226bf0f2b4388587.rmeta: crates/bench/benches/ablation_virtual.rs Cargo.toml

crates/bench/benches/ablation_virtual.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/remap_comm-7f82df4c13f02748.d: crates/comm/src/lib.rs crates/comm/src/barrier.rs crates/comm/src/bus.rs crates/comm/src/hwbarrier.rs crates/comm/src/hwqueue.rs crates/comm/src/t2c.rs Cargo.toml

/root/repo/target/debug/deps/libremap_comm-7f82df4c13f02748.rmeta: crates/comm/src/lib.rs crates/comm/src/barrier.rs crates/comm/src/bus.rs crates/comm/src/hwbarrier.rs crates/comm/src/hwqueue.rs crates/comm/src/t2c.rs Cargo.toml

crates/comm/src/lib.rs:
crates/comm/src/barrier.rs:
crates/comm/src/bus.rs:
crates/comm/src/hwbarrier.rs:
crates/comm/src/hwqueue.rs:
crates/comm/src/t2c.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/ablation_partition-1c19ec12bf85ed8a.d: crates/bench/benches/ablation_partition.rs Cargo.toml

/root/repo/target/debug/deps/libablation_partition-1c19ec12bf85ed8a.rmeta: crates/bench/benches/ablation_partition.rs Cargo.toml

crates/bench/benches/ablation_partition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/remap_comm-3e6f9b51de45cfec.d: crates/comm/src/lib.rs crates/comm/src/barrier.rs crates/comm/src/bus.rs crates/comm/src/hwbarrier.rs crates/comm/src/hwqueue.rs crates/comm/src/t2c.rs

/root/repo/target/debug/deps/remap_comm-3e6f9b51de45cfec: crates/comm/src/lib.rs crates/comm/src/barrier.rs crates/comm/src/bus.rs crates/comm/src/hwbarrier.rs crates/comm/src/hwqueue.rs crates/comm/src/t2c.rs

crates/comm/src/lib.rs:
crates/comm/src/barrier.rs:
crates/comm/src/bus.rs:
crates/comm/src/hwbarrier.rs:
crates/comm/src/hwqueue.rs:
crates/comm/src/t2c.rs:

/root/repo/target/debug/deps/remap_spl-11962f65f1ea4112.d: crates/spl/src/lib.rs crates/spl/src/fabric.rs crates/spl/src/function.rs crates/spl/src/queue.rs crates/spl/src/row.rs

/root/repo/target/debug/deps/libremap_spl-11962f65f1ea4112.rlib: crates/spl/src/lib.rs crates/spl/src/fabric.rs crates/spl/src/function.rs crates/spl/src/queue.rs crates/spl/src/row.rs

/root/repo/target/debug/deps/libremap_spl-11962f65f1ea4112.rmeta: crates/spl/src/lib.rs crates/spl/src/fabric.rs crates/spl/src/function.rs crates/spl/src/queue.rs crates/spl/src/row.rs

crates/spl/src/lib.rs:
crates/spl/src/fabric.rs:
crates/spl/src/function.rs:
crates/spl/src/queue.rs:
crates/spl/src/row.rs:

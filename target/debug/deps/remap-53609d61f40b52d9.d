/root/repo/target/debug/deps/remap-53609d61f40b52d9.d: crates/core/src/lib.rs crates/core/src/hetero.rs crates/core/src/report.rs crates/core/src/system.rs Cargo.toml

/root/repo/target/debug/deps/libremap-53609d61f40b52d9.rmeta: crates/core/src/lib.rs crates/core/src/hetero.rs crates/core/src/report.rs crates/core/src/system.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/hetero.rs:
crates/core/src/report.rs:
crates/core/src/system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/remap_verify-cfa9c56c8179c6b8.d: crates/verify/src/lib.rs crates/verify/src/bundle.rs crates/verify/src/cfg.rs crates/verify/src/diag.rs crates/verify/src/program.rs

/root/repo/target/debug/deps/libremap_verify-cfa9c56c8179c6b8.rlib: crates/verify/src/lib.rs crates/verify/src/bundle.rs crates/verify/src/cfg.rs crates/verify/src/diag.rs crates/verify/src/program.rs

/root/repo/target/debug/deps/libremap_verify-cfa9c56c8179c6b8.rmeta: crates/verify/src/lib.rs crates/verify/src/bundle.rs crates/verify/src/cfg.rs crates/verify/src/diag.rs crates/verify/src/program.rs

crates/verify/src/lib.rs:
crates/verify/src/bundle.rs:
crates/verify/src/cfg.rs:
crates/verify/src/diag.rs:
crates/verify/src/program.rs:

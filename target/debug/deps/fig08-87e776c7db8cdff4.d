/root/repo/target/debug/deps/fig08-87e776c7db8cdff4.d: crates/bench/benches/fig08.rs Cargo.toml

/root/repo/target/debug/deps/libfig08-87e776c7db8cdff4.rmeta: crates/bench/benches/fig08.rs Cargo.toml

crates/bench/benches/fig08.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

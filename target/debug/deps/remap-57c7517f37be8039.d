/root/repo/target/debug/deps/remap-57c7517f37be8039.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/remap-57c7517f37be8039: crates/cli/src/main.rs

crates/cli/src/main.rs:

/root/repo/target/debug/deps/prop-e0aa60b56ffc66c7.d: crates/verify/tests/prop.rs

/root/repo/target/debug/deps/prop-e0aa60b56ffc66c7: crates/verify/tests/prop.rs

crates/verify/tests/prop.rs:

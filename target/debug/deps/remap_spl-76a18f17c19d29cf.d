/root/repo/target/debug/deps/remap_spl-76a18f17c19d29cf.d: crates/spl/src/lib.rs crates/spl/src/fabric.rs crates/spl/src/function.rs crates/spl/src/queue.rs crates/spl/src/row.rs

/root/repo/target/debug/deps/remap_spl-76a18f17c19d29cf: crates/spl/src/lib.rs crates/spl/src/fabric.rs crates/spl/src/function.rs crates/spl/src/queue.rs crates/spl/src/row.rs

crates/spl/src/lib.rs:
crates/spl/src/fabric.rs:
crates/spl/src/function.rs:
crates/spl/src/queue.rs:
crates/spl/src/row.rs:

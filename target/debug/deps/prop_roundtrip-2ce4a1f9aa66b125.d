/root/repo/target/debug/deps/prop_roundtrip-2ce4a1f9aa66b125.d: crates/isa/tests/prop_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libprop_roundtrip-2ce4a1f9aa66b125.rmeta: crates/isa/tests/prop_roundtrip.rs Cargo.toml

crates/isa/tests/prop_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/remap_isa-83e9e4df7b1907ed.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/inst.rs crates/isa/src/program.rs crates/isa/src/reg.rs Cargo.toml

/root/repo/target/debug/deps/libremap_isa-83e9e4df7b1907ed.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/inst.rs crates/isa/src/program.rs crates/isa/src/reg.rs Cargo.toml

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/inst.rs:
crates/isa/src/program.rs:
crates/isa/src/reg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

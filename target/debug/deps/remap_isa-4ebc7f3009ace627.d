/root/repo/target/debug/deps/remap_isa-4ebc7f3009ace627.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/inst.rs crates/isa/src/program.rs crates/isa/src/reg.rs

/root/repo/target/debug/deps/libremap_isa-4ebc7f3009ace627.rlib: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/inst.rs crates/isa/src/program.rs crates/isa/src/reg.rs

/root/repo/target/debug/deps/libremap_isa-4ebc7f3009ace627.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/inst.rs crates/isa/src/program.rs crates/isa/src/reg.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/inst.rs:
crates/isa/src/program.rs:
crates/isa/src/reg.rs:

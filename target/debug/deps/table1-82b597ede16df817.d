/root/repo/target/debug/deps/table1-82b597ede16df817.d: crates/bench/benches/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-82b597ede16df817.rmeta: crates/bench/benches/table1.rs Cargo.toml

crates/bench/benches/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/remap_bench-3da9badc02045b73.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libremap_bench-3da9badc02045b73.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libremap_bench-3da9badc02045b73.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

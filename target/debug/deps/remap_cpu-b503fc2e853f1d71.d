/root/repo/target/debug/deps/remap_cpu-b503fc2e853f1d71.d: crates/cpu/src/lib.rs crates/cpu/src/bpred.rs crates/cpu/src/config.rs crates/cpu/src/core.rs crates/cpu/src/ports.rs crates/cpu/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libremap_cpu-b503fc2e853f1d71.rmeta: crates/cpu/src/lib.rs crates/cpu/src/bpred.rs crates/cpu/src/config.rs crates/cpu/src/core.rs crates/cpu/src/ports.rs crates/cpu/src/stats.rs Cargo.toml

crates/cpu/src/lib.rs:
crates/cpu/src/bpred.rs:
crates/cpu/src/config.rs:
crates/cpu/src/core.rs:
crates/cpu/src/ports.rs:
crates/cpu/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/paper_claims-8b087f7a49de6dd1.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-8b087f7a49de6dd1: tests/paper_claims.rs

tests/paper_claims.rs:

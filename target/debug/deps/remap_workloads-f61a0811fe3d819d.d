/root/repo/target/debug/deps/remap_workloads-f61a0811fe3d819d.d: crates/workloads/src/lib.rs crates/workloads/src/barriers.rs crates/workloads/src/comm.rs crates/workloads/src/comm_progs.rs crates/workloads/src/comp.rs crates/workloads/src/framework.rs crates/workloads/src/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libremap_workloads-f61a0811fe3d819d.rmeta: crates/workloads/src/lib.rs crates/workloads/src/barriers.rs crates/workloads/src/comm.rs crates/workloads/src/comm_progs.rs crates/workloads/src/comp.rs crates/workloads/src/framework.rs crates/workloads/src/pipeline.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/barriers.rs:
crates/workloads/src/comm.rs:
crates/workloads/src/comm_progs.rs:
crates/workloads/src/comp.rs:
crates/workloads/src/framework.rs:
crates/workloads/src/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/remap_workloads-db7e0249f4e456c6.d: crates/workloads/src/lib.rs crates/workloads/src/barriers.rs crates/workloads/src/comm.rs crates/workloads/src/comm_progs.rs crates/workloads/src/comp.rs crates/workloads/src/framework.rs crates/workloads/src/pipeline.rs

/root/repo/target/debug/deps/remap_workloads-db7e0249f4e456c6: crates/workloads/src/lib.rs crates/workloads/src/barriers.rs crates/workloads/src/comm.rs crates/workloads/src/comm_progs.rs crates/workloads/src/comp.rs crates/workloads/src/framework.rs crates/workloads/src/pipeline.rs

crates/workloads/src/lib.rs:
crates/workloads/src/barriers.rs:
crates/workloads/src/comm.rs:
crates/workloads/src/comm_progs.rs:
crates/workloads/src/comp.rs:
crates/workloads/src/framework.rs:
crates/workloads/src/pipeline.rs:

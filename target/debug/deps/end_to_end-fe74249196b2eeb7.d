/root/repo/target/debug/deps/end_to_end-fe74249196b2eeb7.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-fe74249196b2eeb7: tests/end_to_end.rs

tests/end_to_end.rs:

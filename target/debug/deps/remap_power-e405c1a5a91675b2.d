/root/repo/target/debug/deps/remap_power-e405c1a5a91675b2.d: crates/power/src/lib.rs crates/power/src/area.rs crates/power/src/energy.rs crates/power/src/model.rs

/root/repo/target/debug/deps/remap_power-e405c1a5a91675b2: crates/power/src/lib.rs crates/power/src/area.rs crates/power/src/energy.rs crates/power/src/model.rs

crates/power/src/lib.rs:
crates/power/src/area.rs:
crates/power/src/energy.rs:
crates/power/src/model.rs:

/root/repo/target/debug/deps/remap_workloads-467d1d5decb11fdd.d: crates/workloads/src/lib.rs crates/workloads/src/barriers.rs crates/workloads/src/comm.rs crates/workloads/src/comm_progs.rs crates/workloads/src/comp.rs crates/workloads/src/framework.rs crates/workloads/src/pipeline.rs

/root/repo/target/debug/deps/libremap_workloads-467d1d5decb11fdd.rlib: crates/workloads/src/lib.rs crates/workloads/src/barriers.rs crates/workloads/src/comm.rs crates/workloads/src/comm_progs.rs crates/workloads/src/comp.rs crates/workloads/src/framework.rs crates/workloads/src/pipeline.rs

/root/repo/target/debug/deps/libremap_workloads-467d1d5decb11fdd.rmeta: crates/workloads/src/lib.rs crates/workloads/src/barriers.rs crates/workloads/src/comm.rs crates/workloads/src/comm_progs.rs crates/workloads/src/comp.rs crates/workloads/src/framework.rs crates/workloads/src/pipeline.rs

crates/workloads/src/lib.rs:
crates/workloads/src/barriers.rs:
crates/workloads/src/comm.rs:
crates/workloads/src/comm_progs.rs:
crates/workloads/src/comp.rs:
crates/workloads/src/framework.rs:
crates/workloads/src/pipeline.rs:

/root/repo/target/release/examples/tmp_verify_demo-68062a825c8b9bfe.d: examples/tmp_verify_demo.rs

/root/repo/target/release/examples/tmp_verify_demo-68062a825c8b9bfe: examples/tmp_verify_demo.rs

examples/tmp_verify_demo.rs:

/root/repo/target/release/deps/remap_suite-b906b34371c2be7a.d: src/lib.rs

/root/repo/target/release/deps/libremap_suite-b906b34371c2be7a.rlib: src/lib.rs

/root/repo/target/release/deps/libremap_suite-b906b34371c2be7a.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/release/deps/remap_cpu-b7527cad9b154d6d.d: crates/cpu/src/lib.rs crates/cpu/src/bpred.rs crates/cpu/src/config.rs crates/cpu/src/core.rs crates/cpu/src/ports.rs crates/cpu/src/stats.rs

/root/repo/target/release/deps/libremap_cpu-b7527cad9b154d6d.rlib: crates/cpu/src/lib.rs crates/cpu/src/bpred.rs crates/cpu/src/config.rs crates/cpu/src/core.rs crates/cpu/src/ports.rs crates/cpu/src/stats.rs

/root/repo/target/release/deps/libremap_cpu-b7527cad9b154d6d.rmeta: crates/cpu/src/lib.rs crates/cpu/src/bpred.rs crates/cpu/src/config.rs crates/cpu/src/core.rs crates/cpu/src/ports.rs crates/cpu/src/stats.rs

crates/cpu/src/lib.rs:
crates/cpu/src/bpred.rs:
crates/cpu/src/config.rs:
crates/cpu/src/core.rs:
crates/cpu/src/ports.rs:
crates/cpu/src/stats.rs:

/root/repo/target/release/deps/remap_spl-74ef842fa01bd5cd.d: crates/spl/src/lib.rs crates/spl/src/fabric.rs crates/spl/src/function.rs crates/spl/src/queue.rs crates/spl/src/row.rs

/root/repo/target/release/deps/libremap_spl-74ef842fa01bd5cd.rlib: crates/spl/src/lib.rs crates/spl/src/fabric.rs crates/spl/src/function.rs crates/spl/src/queue.rs crates/spl/src/row.rs

/root/repo/target/release/deps/libremap_spl-74ef842fa01bd5cd.rmeta: crates/spl/src/lib.rs crates/spl/src/fabric.rs crates/spl/src/function.rs crates/spl/src/queue.rs crates/spl/src/row.rs

crates/spl/src/lib.rs:
crates/spl/src/fabric.rs:
crates/spl/src/function.rs:
crates/spl/src/queue.rs:
crates/spl/src/row.rs:

/root/repo/target/release/deps/remap_isa-732d3364ab0a04a2.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/inst.rs crates/isa/src/program.rs crates/isa/src/reg.rs

/root/repo/target/release/deps/libremap_isa-732d3364ab0a04a2.rlib: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/inst.rs crates/isa/src/program.rs crates/isa/src/reg.rs

/root/repo/target/release/deps/libremap_isa-732d3364ab0a04a2.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/inst.rs crates/isa/src/program.rs crates/isa/src/reg.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/inst.rs:
crates/isa/src/program.rs:
crates/isa/src/reg.rs:

/root/repo/target/release/deps/remap_power-d07b39f3a6cf1aa4.d: crates/power/src/lib.rs crates/power/src/area.rs crates/power/src/energy.rs crates/power/src/model.rs

/root/repo/target/release/deps/libremap_power-d07b39f3a6cf1aa4.rlib: crates/power/src/lib.rs crates/power/src/area.rs crates/power/src/energy.rs crates/power/src/model.rs

/root/repo/target/release/deps/libremap_power-d07b39f3a6cf1aa4.rmeta: crates/power/src/lib.rs crates/power/src/area.rs crates/power/src/energy.rs crates/power/src/model.rs

crates/power/src/lib.rs:
crates/power/src/area.rs:
crates/power/src/energy.rs:
crates/power/src/model.rs:

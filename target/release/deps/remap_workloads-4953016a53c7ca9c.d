/root/repo/target/release/deps/remap_workloads-4953016a53c7ca9c.d: crates/workloads/src/lib.rs crates/workloads/src/barriers.rs crates/workloads/src/comm.rs crates/workloads/src/comp.rs crates/workloads/src/comm_progs.rs crates/workloads/src/framework.rs crates/workloads/src/pipeline.rs

/root/repo/target/release/deps/libremap_workloads-4953016a53c7ca9c.rlib: crates/workloads/src/lib.rs crates/workloads/src/barriers.rs crates/workloads/src/comm.rs crates/workloads/src/comp.rs crates/workloads/src/comm_progs.rs crates/workloads/src/framework.rs crates/workloads/src/pipeline.rs

/root/repo/target/release/deps/libremap_workloads-4953016a53c7ca9c.rmeta: crates/workloads/src/lib.rs crates/workloads/src/barriers.rs crates/workloads/src/comm.rs crates/workloads/src/comp.rs crates/workloads/src/comm_progs.rs crates/workloads/src/framework.rs crates/workloads/src/pipeline.rs

crates/workloads/src/lib.rs:
crates/workloads/src/barriers.rs:
crates/workloads/src/comm.rs:
crates/workloads/src/comp.rs:
crates/workloads/src/comm_progs.rs:
crates/workloads/src/framework.rs:
crates/workloads/src/pipeline.rs:

/root/repo/target/release/deps/remap_suite-132fa3f4acd27c76.d: src/lib.rs

/root/repo/target/release/deps/libremap_suite-132fa3f4acd27c76.rlib: src/lib.rs

/root/repo/target/release/deps/libremap_suite-132fa3f4acd27c76.rmeta: src/lib.rs

src/lib.rs:

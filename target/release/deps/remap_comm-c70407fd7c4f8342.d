/root/repo/target/release/deps/remap_comm-c70407fd7c4f8342.d: crates/comm/src/lib.rs crates/comm/src/barrier.rs crates/comm/src/bus.rs crates/comm/src/hwbarrier.rs crates/comm/src/hwqueue.rs crates/comm/src/t2c.rs

/root/repo/target/release/deps/libremap_comm-c70407fd7c4f8342.rlib: crates/comm/src/lib.rs crates/comm/src/barrier.rs crates/comm/src/bus.rs crates/comm/src/hwbarrier.rs crates/comm/src/hwqueue.rs crates/comm/src/t2c.rs

/root/repo/target/release/deps/libremap_comm-c70407fd7c4f8342.rmeta: crates/comm/src/lib.rs crates/comm/src/barrier.rs crates/comm/src/bus.rs crates/comm/src/hwbarrier.rs crates/comm/src/hwqueue.rs crates/comm/src/t2c.rs

crates/comm/src/lib.rs:
crates/comm/src/barrier.rs:
crates/comm/src/bus.rs:
crates/comm/src/hwbarrier.rs:
crates/comm/src/hwqueue.rs:
crates/comm/src/t2c.rs:

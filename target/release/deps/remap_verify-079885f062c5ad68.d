/root/repo/target/release/deps/remap_verify-079885f062c5ad68.d: crates/verify/src/lib.rs crates/verify/src/bundle.rs crates/verify/src/cfg.rs crates/verify/src/diag.rs crates/verify/src/program.rs

/root/repo/target/release/deps/libremap_verify-079885f062c5ad68.rlib: crates/verify/src/lib.rs crates/verify/src/bundle.rs crates/verify/src/cfg.rs crates/verify/src/diag.rs crates/verify/src/program.rs

/root/repo/target/release/deps/libremap_verify-079885f062c5ad68.rmeta: crates/verify/src/lib.rs crates/verify/src/bundle.rs crates/verify/src/cfg.rs crates/verify/src/diag.rs crates/verify/src/program.rs

crates/verify/src/lib.rs:
crates/verify/src/bundle.rs:
crates/verify/src/cfg.rs:
crates/verify/src/diag.rs:
crates/verify/src/program.rs:

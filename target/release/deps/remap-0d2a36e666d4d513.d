/root/repo/target/release/deps/remap-0d2a36e666d4d513.d: crates/core/src/lib.rs crates/core/src/hetero.rs crates/core/src/report.rs crates/core/src/system.rs

/root/repo/target/release/deps/libremap-0d2a36e666d4d513.rlib: crates/core/src/lib.rs crates/core/src/hetero.rs crates/core/src/report.rs crates/core/src/system.rs

/root/repo/target/release/deps/libremap-0d2a36e666d4d513.rmeta: crates/core/src/lib.rs crates/core/src/hetero.rs crates/core/src/report.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/hetero.rs:
crates/core/src/report.rs:
crates/core/src/system.rs:

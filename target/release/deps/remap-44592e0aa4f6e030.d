/root/repo/target/release/deps/remap-44592e0aa4f6e030.d: crates/cli/src/main.rs

/root/repo/target/release/deps/remap-44592e0aa4f6e030: crates/cli/src/main.rs

crates/cli/src/main.rs:

/root/repo/target/release/deps/remap-9bf19f5e5d71ce9f.d: crates/core/src/lib.rs crates/core/src/hetero.rs crates/core/src/report.rs crates/core/src/system.rs

/root/repo/target/release/deps/libremap-9bf19f5e5d71ce9f.rlib: crates/core/src/lib.rs crates/core/src/hetero.rs crates/core/src/report.rs crates/core/src/system.rs

/root/repo/target/release/deps/libremap-9bf19f5e5d71ce9f.rmeta: crates/core/src/lib.rs crates/core/src/hetero.rs crates/core/src/report.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/hetero.rs:
crates/core/src/report.rs:
crates/core/src/system.rs:

/root/repo/target/release/deps/remap_mem-02ad04a88290763a.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/flat.rs crates/mem/src/hierarchy.rs

/root/repo/target/release/deps/libremap_mem-02ad04a88290763a.rlib: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/flat.rs crates/mem/src/hierarchy.rs

/root/repo/target/release/deps/libremap_mem-02ad04a88290763a.rmeta: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/flat.rs crates/mem/src/hierarchy.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/flat.rs:
crates/mem/src/hierarchy.rs:

//! Workspace umbrella crate: re-exports every ReMAP subsystem crate so the
//! repository-level examples and integration tests have a single import root.

pub use remap as system;
pub use remap_comm as comm;
pub use remap_cpu as cpu;
pub use remap_fault as fault;
pub use remap_isa as isa;
pub use remap_mem as mem;
pub use remap_power as power;
pub use remap_spl as spl;
pub use remap_verify as verify;
pub use remap_workloads as workloads;
